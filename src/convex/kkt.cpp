#include "convex/kkt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protemp::convex {

// -------------------------------------------------- StructuredKktSolver --

bool StructuredKktSolver::factorize(const linalg::SparseMatrix& h,
                                    const linalg::Matrix* a,
                                    double base_ridge) {
  if (h.rows() != h.cols()) {
    throw std::invalid_argument("StructuredKktSolver: H must be square");
  }
  n_ = h.rows();
  a_ = (a != nullptr && a->rows() > 0) ? a : nullptr;
  p_ = a_ ? a_->rows() : 0;
  if (a_ && a_->cols() != n_) {
    throw std::invalid_argument("StructuredKktSolver: A/H shape mismatch");
  }

  double ridge = base_ridge;
  bool factored = false;
  for (int attempt = 0; attempt < 9; ++attempt, ridge *= 100.0) {
    if (buf_.h_factor.refactor(h, ridge)) {
      factored = true;
      break;
    }
  }
  if (!factored) return false;
  if (p_ == 0) return true;

  // Schur complement of the equality block: w_i = H^{-1} a_i (one banded
  // solve per equality row), S = A W^T. S is SPD whenever A has full row
  // rank; rank-deficient blocks fail its dense factorization, reported as
  // a factorization failure like the dense path's.
  buf_.w_rows.resize(p_, n_);
  buf_.schur.resize(p_, p_);
  for (std::size_t i = 0; i < p_; ++i) {
    buf_.row.resize(n_);
    for (std::size_t j = 0; j < n_; ++j) buf_.row[j] = (*a_)(i, j);
    buf_.h_factor.solve_into(buf_.row, buf_.t, buf_.scratch);
    for (std::size_t j = 0; j < n_; ++j) buf_.w_rows(i, j) = buf_.t[j];
  }
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n_; ++k) {
        acc += (*a_)(i, k) * buf_.w_rows(j, k);
      }
      buf_.schur(i, j) = acc;
      buf_.schur(j, i) = acc;
    }
  }
  return buf_.schur_factor.refactor(buf_.schur, 0.0);
}

void StructuredKktSolver::solve_into(const linalg::Vector& r1,
                                     const linalg::Vector& r2,
                                     linalg::Vector& dx,
                                     linalg::Vector& dy) const {
  if (r1.size() != n_) {
    throw std::invalid_argument("StructuredKktSolver::solve: r1 size");
  }
  buf_.h_factor.solve_into(r1, buf_.t, buf_.scratch);
  if (p_ == 0) {
    dx = buf_.t;
    dy.resize(0);
    return;
  }
  if (r2.size() != p_) {
    throw std::invalid_argument("StructuredKktSolver::solve: r2 size");
  }
  // dy = S^{-1} (A t - r2), dx = t - sum_i dy_i w_i.
  buf_.rhs_y.resize(p_);
  a_->multiply_add_into(buf_.t, buf_.rhs_y);
  buf_.rhs_y -= r2;
  buf_.schur_factor.solve_into(buf_.rhs_y, buf_.dy);
  dx = buf_.t;
  for (std::size_t i = 0; i < p_; ++i) {
    const double di = buf_.dy[i];
    if (di == 0.0) continue;
    for (std::size_t j = 0; j < n_; ++j) dx[j] -= di * buf_.w_rows(i, j);
  }
  dy = buf_.dy;
}

// ----------------------------------------------------------- residuals --

double KktResiduals::worst() const noexcept {
  return std::max({stationarity, primal_infeasibility, dual_infeasibility,
                   complementarity});
}

KktResiduals check_kkt(const BarrierProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& duals) {
  problem.validate();
  if (duals.size() != problem.num_constraints()) {
    throw std::invalid_argument("check_kkt: dual vector size mismatch");
  }
  KktResiduals out;

  linalg::Vector stat = problem.objective->gradient(x);
  std::size_t idx = 0;
  for (const auto& f : problem.constraints) {
    const double fi = f->value(x);
    const double li = duals[idx++];
    out.primal_infeasibility = std::max(out.primal_infeasibility, fi);
    out.dual_infeasibility = std::max(out.dual_infeasibility, -li);
    out.complementarity = std::max(out.complementarity, std::abs(li * fi));
    stat.axpy(li, f->gradient(x));
  }
  if (problem.linear) {
    const linalg::Vector r = problem.linear->residuals(x);
    linalg::Vector z(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = duals[idx++];
      out.primal_infeasibility = std::max(out.primal_infeasibility, r[i]);
      out.dual_infeasibility = std::max(out.dual_infeasibility, -z[i]);
      out.complementarity =
          std::max(out.complementarity, std::abs(z[i] * r[i]));
    }
    problem.linear->g.multiply_transposed_add_into(z, stat);
  }
  out.stationarity = stat.norm_inf();
  out.primal_infeasibility = std::max(0.0, out.primal_infeasibility);
  out.dual_infeasibility = std::max(0.0, out.dual_infeasibility);
  return out;
}

KktResiduals check_kkt(const QpProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& ineq_duals,
                       const linalg::Vector& eq_duals) {
  problem.validate();
  KktResiduals out;

  linalg::Vector stat = problem.q;
  problem.quadratic_multiply_add(x, stat);
  if (problem.num_inequalities() > 0) {
    if (ineq_duals.size() != problem.num_inequalities()) {
      throw std::invalid_argument("check_kkt: ineq dual size mismatch");
    }
    problem.g.multiply_transposed_add_into(ineq_duals, stat);
    const linalg::Vector r = problem.g * x - problem.h;
    for (std::size_t i = 0; i < r.size(); ++i) {
      out.primal_infeasibility = std::max(out.primal_infeasibility, r[i]);
      out.dual_infeasibility =
          std::max(out.dual_infeasibility, -ineq_duals[i]);
      out.complementarity =
          std::max(out.complementarity, std::abs(ineq_duals[i] * r[i]));
    }
  }
  if (problem.num_equalities() > 0) {
    if (eq_duals.size() != problem.num_equalities()) {
      throw std::invalid_argument("check_kkt: eq dual size mismatch");
    }
    problem.a.multiply_transposed_add_into(eq_duals, stat);
    const linalg::Vector r = problem.a * x - problem.b;
    out.primal_infeasibility =
        std::max(out.primal_infeasibility, r.norm_inf());
  }
  out.stationarity = stat.norm_inf();
  out.primal_infeasibility = std::max(0.0, out.primal_infeasibility);
  out.dual_infeasibility = std::max(0.0, out.dual_infeasibility);
  return out;
}

}  // namespace protemp::convex
