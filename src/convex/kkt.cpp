#include "convex/kkt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protemp::convex {

double KktResiduals::worst() const noexcept {
  return std::max({stationarity, primal_infeasibility, dual_infeasibility,
                   complementarity});
}

KktResiduals check_kkt(const BarrierProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& duals) {
  problem.validate();
  if (duals.size() != problem.num_constraints()) {
    throw std::invalid_argument("check_kkt: dual vector size mismatch");
  }
  KktResiduals out;

  linalg::Vector stat = problem.objective->gradient(x);
  std::size_t idx = 0;
  for (const auto& f : problem.constraints) {
    const double fi = f->value(x);
    const double li = duals[idx++];
    out.primal_infeasibility = std::max(out.primal_infeasibility, fi);
    out.dual_infeasibility = std::max(out.dual_infeasibility, -li);
    out.complementarity = std::max(out.complementarity, std::abs(li * fi));
    stat.axpy(li, f->gradient(x));
  }
  if (problem.linear) {
    const linalg::Vector r = problem.linear->residuals(x);
    linalg::Vector z(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      z[i] = duals[idx++];
      out.primal_infeasibility = std::max(out.primal_infeasibility, r[i]);
      out.dual_infeasibility = std::max(out.dual_infeasibility, -z[i]);
      out.complementarity =
          std::max(out.complementarity, std::abs(z[i] * r[i]));
    }
    problem.linear->g.multiply_transposed_add_into(z, stat);
  }
  out.stationarity = stat.norm_inf();
  out.primal_infeasibility = std::max(0.0, out.primal_infeasibility);
  out.dual_infeasibility = std::max(0.0, out.dual_infeasibility);
  return out;
}

KktResiduals check_kkt(const QpProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& ineq_duals,
                       const linalg::Vector& eq_duals) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  KktResiduals out;

  linalg::Vector stat = problem.q;
  if (problem.p.rows() == n) problem.p.multiply_add_into(x, stat);
  if (problem.num_inequalities() > 0) {
    if (ineq_duals.size() != problem.num_inequalities()) {
      throw std::invalid_argument("check_kkt: ineq dual size mismatch");
    }
    problem.g.multiply_transposed_add_into(ineq_duals, stat);
    const linalg::Vector r = problem.g * x - problem.h;
    for (std::size_t i = 0; i < r.size(); ++i) {
      out.primal_infeasibility = std::max(out.primal_infeasibility, r[i]);
      out.dual_infeasibility =
          std::max(out.dual_infeasibility, -ineq_duals[i]);
      out.complementarity =
          std::max(out.complementarity, std::abs(ineq_duals[i] * r[i]));
    }
  }
  if (problem.num_equalities() > 0) {
    if (eq_duals.size() != problem.num_equalities()) {
      throw std::invalid_argument("check_kkt: eq dual size mismatch");
    }
    problem.a.multiply_transposed_add_into(eq_duals, stat);
    const linalg::Vector r = problem.a * x - problem.b;
    out.primal_infeasibility =
        std::max(out.primal_infeasibility, r.norm_inf());
  }
  out.stationarity = stat.norm_inf();
  out.primal_infeasibility = std::max(0.0, out.primal_infeasibility);
  out.dual_infeasibility = std::max(0.0, out.dual_infeasibility);
  return out;
}

}  // namespace protemp::convex
