// Dense convex quadratic program solver (primal-dual interior point).
//
//   minimize    1/2 x^T P x + q^T x
//   subject to  G x <= h
//               A x  = b
//
// with P symmetric positive semidefinite. P may be zero (LP). The solver is
// a Mehrotra-style predictor-corrector interior-point method working on the
// condensed normal equations; it targets the problem sizes in this library
// (n up to a few hundred variables, thousands of inequality rows).
//
// This is the general-purpose work-horse the paper delegates to CVX [27]:
// the Pro-Temp per-point programs reduce to instances of this class (after
// the s = f^2 change of variables the workload constraint is handled by the
// barrier solver; pure-QP subproblems and all solver cross-checks use this).
#pragma once

#include <cstddef>
#include <optional>

#include "convex/problem.hpp"
#include "convex/workspace.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"

namespace protemp::convex {

struct QpOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-9;        ///< duality gap + residual target
  double step_fraction = 0.99;    ///< fraction-to-boundary rule
  double ridge = 1e-12;           ///< base diagonal regularization
  bool verbose = false;           ///< per-iteration log lines at INFO level
};

struct QpProblem {
  linalg::Matrix p;  ///< n x n PSD (may be 0 x 0 for a pure LP in n vars —
                     ///< then q defines n)
  linalg::Vector q;  ///< n
  linalg::Matrix g;  ///< m x n (may be empty: unconstrained/equality only)
  linalg::Vector h;  ///< m
  linalg::Matrix a;  ///< p x n (may be empty)
  linalg::Vector b;  ///< p
  /// Sparse alternative to `p` for RC-network-structured quadratic terms
  /// (mutually exclusive with a non-empty dense `p`; last member so the
  /// historical brace-init sites stay valid). With no inequalities the KKT
  /// system is then solved by the banded sparse Cholesky through
  /// StructuredKktSolver (O(n b^2) instead of O(n^3)); with inequalities
  /// the condensed normal equations G^T W G are dense anyway, and the
  /// sparse term is simply scattered into them.
  std::optional<linalg::SparseMatrix> p_sparse;

  std::size_t num_variables() const noexcept { return q.size(); }
  std::size_t num_inequalities() const noexcept { return h.size(); }
  std::size_t num_equalities() const noexcept { return b.size(); }

  /// y += P x under whichever representation the problem carries (no-op
  /// for an LP).
  void quadratic_multiply_add(const linalg::Vector& x,
                              linalg::Vector& out) const;

  /// Throws std::invalid_argument if the shapes are inconsistent.
  void validate() const;
};

/// Solves the QP. Infeasibility is reported as kInfeasible when the iterates
/// diverge with growing primal residual (heuristic certificate; exact Farkas
/// certificates are out of scope for this dense solver).
///
/// `workspace` (optional) keeps the condensed normal-equations matrix and
/// its Cholesky factor storage alive across iterations *and* across solves
/// of same-shaped problems; a null workspace uses a throwaway one.
Solution solve_qp(const QpProblem& problem, const QpOptions& options = {},
                  SolverWorkspace* workspace = nullptr);

}  // namespace protemp::convex
