// KKT systems: the structure-aware Newton-step solver and the residual
// oracle.
//
// StructuredKktSolver factorizes the saddle systems Newton steps produce,
//   [ H   A^T ] [dx]   [r1]
//   [ A    0  ] [dy] = [r2]
// exploiting a *sparse* SPD Hessian block H: H goes through the banded
// (RCM-ordered) sparse Cholesky and the (small, dense) equality block A is
// folded through a p x p Schur complement S = A H^{-1} A^T. This is the
// O(cores)-aware solve path for n-core problems whose Hessians keep the RC
// network's sparsity (equality-constrained QPs over node temperatures,
// separable barriers); the interior-point *normal equations* of the
// Pro-Temp program stay dense by construction — folding thousands of dense
// temperature rows through G^T W G fills H completely — which is why the
// barrier path only switches to this solver when its assembled Hessian is
// actually sparse (see DESIGN.md "when dense wins").
//
// Tests and benches verify solver output by checking the Karush-Kuhn-Tucker
// conditions directly rather than trusting solver status codes:
//   stationarity:       || grad f0 + sum_i lambda_i grad f_i + G^T z ||_inf
//   primal feasibility: max_i f_i(x), max_j (Gx - h)_j  (<= tol)
//   dual feasibility:   min_i lambda_i                  (>= -tol)
//   complementarity:    max_i |lambda_i * f_i(x)|
#pragma once

#include "convex/barrier.hpp"
#include "convex/qp.hpp"
#include "convex/workspace.hpp"
#include "linalg/sparse.hpp"

namespace protemp::convex {

/// Workspace-backed solver for [H A^T; A 0] with sparse SPD H (n x n) and
/// an optional dense equality block A (p x n, p << n). All storage lives in
/// the caller's SolverWorkspace, so repeated factorize/solve cycles (one
/// per Newton or IPM iteration) allocate nothing in steady state.
class StructuredKktSolver {
 public:
  explicit StructuredKktSolver(SolverWorkspace::StructuredKktBuffers& buffers)
      : buf_(buffers) {}

  /// Factorizes H + ridge*I (escalating the ridge on failure exactly like
  /// the dense path) and, when `a` is non-null and non-empty, the Schur
  /// complement of the equality block. Returns false when no ridge in the
  /// escalation schedule makes the system factorizable.
  bool factorize(const linalg::SparseMatrix& h, const linalg::Matrix* a,
                 double base_ridge);

  /// Solves for (dx, dy); `r2`/`dy` are ignored when there is no equality
  /// block. factorize() must have succeeded first.
  void solve_into(const linalg::Vector& r1, const linalg::Vector& r2,
                  linalg::Vector& dx, linalg::Vector& dy) const;

  std::size_t num_variables() const noexcept { return n_; }
  std::size_t num_equalities() const noexcept { return p_; }

 private:
  SolverWorkspace::StructuredKktBuffers& buf_;
  const linalg::Matrix* a_ = nullptr;
  std::size_t n_ = 0;
  std::size_t p_ = 0;
};

struct KktResiduals {
  double stationarity = 0.0;
  double primal_infeasibility = 0.0;  ///< max(0, worst constraint violation)
  double dual_infeasibility = 0.0;    ///< max(0, -min multiplier)
  double complementarity = 0.0;

  double worst() const noexcept;
  bool within(double tol) const noexcept { return worst() <= tol; }
};

/// Residuals for a barrier-solved program. `duals` must be ordered nonlinear
/// constraints first, then linear rows (as Solution::ineq_duals is).
KktResiduals check_kkt(const BarrierProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& duals);

/// Residuals for a QP solution.
KktResiduals check_kkt(const QpProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& ineq_duals,
                       const linalg::Vector& eq_duals);

}  // namespace protemp::convex
