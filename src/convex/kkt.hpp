// KKT residual computation — the library's optimality oracle.
//
// Tests and benches verify solver output by checking the Karush-Kuhn-Tucker
// conditions directly rather than trusting solver status codes:
//   stationarity:       || grad f0 + sum_i lambda_i grad f_i + G^T z ||_inf
//   primal feasibility: max_i f_i(x), max_j (Gx - h)_j  (<= tol)
//   dual feasibility:   min_i lambda_i                  (>= -tol)
//   complementarity:    max_i |lambda_i * f_i(x)|
#pragma once

#include "convex/barrier.hpp"
#include "convex/qp.hpp"

namespace protemp::convex {

struct KktResiduals {
  double stationarity = 0.0;
  double primal_infeasibility = 0.0;  ///< max(0, worst constraint violation)
  double dual_infeasibility = 0.0;    ///< max(0, -min multiplier)
  double complementarity = 0.0;

  double worst() const noexcept;
  bool within(double tol) const noexcept { return worst() <= tol; }
};

/// Residuals for a barrier-solved program. `duals` must be ordered nonlinear
/// constraints first, then linear rows (as Solution::ineq_duals is).
KktResiduals check_kkt(const BarrierProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& duals);

/// Residuals for a QP solution.
KktResiduals check_kkt(const QpProblem& problem, const linalg::Vector& x,
                       const linalg::Vector& ineq_duals,
                       const linalg::Vector& eq_duals);

}  // namespace protemp::convex
