#include "convex/problem.hpp"

#include "util/strings.hpp"

namespace protemp::convex {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kMaxIterations: return "max_iterations";
    case SolveStatus::kBudgetExpired: return "budget_expired";
    case SolveStatus::kNumericalFailure: return "numerical_failure";
  }
  return "?";
}

std::string Solution::summary() const {
  return util::format(
      "status=%s obj=%.6g iters=%zu gap=%.2e res_p=%.2e res_d=%.2e",
      to_string(status), objective, iterations, gap, primal_residual,
      dual_residual);
}

}  // namespace protemp::convex
