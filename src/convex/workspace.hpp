// Reusable solver state threaded through successive solves.
//
// Every barrier/QP solve of a given problem shape needs the same set of
// KKT/Cholesky/iterate buffers; a SolverWorkspace owns them once so the hot
// loops allocate nothing in steady state. The workspace is also the
// warm-start memory: callers that solve a *sequence* of neighbouring
// problems (frequency-table sweep points, MPC simulation steps) record each
// optimum and seed the next solve from it instead of the analytic-center
// cold start — the key lever for making Phase-1 run at hardware speed (cf.
// the MPC-accelerator line of work on warm-started thermal solves).
//
// Ownership rule: a workspace is single-owner mutable state. It is never
// shared across threads — parallel callers keep one workspace per thread
// (FrequencyTable::build owns one per build call; OnlineProTempPolicy owns
// one per policy instance, and ScenarioRunner gives every scenario its own
// policy instances).
#pragma once

#include <array>
#include <cstddef>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"

namespace protemp::convex {

class SolverWorkspace {
 public:
  /// Warm-start slots: problem families whose optima must not seed each
  /// other (the power-minimization program and the max-throughput program
  /// share constraints but have different optima).
  enum Slot : std::size_t { kMain = 0, kThroughput = 1, kNumSlots = 2 };

  SolverWorkspace() = default;
  explicit SolverWorkspace(bool warm_start) : warm_start_(warm_start) {}

  bool warm_start_enabled() const noexcept { return warm_start_; }
  void set_warm_start(bool on) noexcept { warm_start_ = on; }

  /// Previous optimum recorded for `slot`, or nullptr if none (or warm
  /// starting is disabled).
  const linalg::Vector* hint(Slot slot) const noexcept;
  void remember(Slot slot, const linalg::Vector& x);
  /// Drops every recorded optimum (e.g. when the problem shape changes).
  void forget() noexcept;

  struct Stats {
    std::size_t solves = 0;         ///< barrier solves through this workspace
    std::size_t warm_started = 0;   ///< seeded from a recorded optimum
    std::size_t warm_rejected = 0;  ///< hint present but not strictly feasible
    std::size_t newton_steps = 0;   ///< cumulative Newton iterations
    std::size_t budget_expired = 0; ///< solves cut short by the fixed budget
  };
  Stats& stats() noexcept { return stats_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Buffers of the log-barrier solver's centering loop. Sized on first use
  /// per problem shape; all writes happen inside barrier.cpp.
  struct BarrierBuffers {
    linalg::Vector gradient;    ///< n: barrier gradient at the iterate
    linalg::Matrix hessian;     ///< n x n: barrier Hessian
    linalg::Matrix gram;        ///< n x n: linear-block Gram contribution
    linalg::Vector direction;   ///< n: Newton direction
    linalg::Vector neg_grad;    ///< n: right-hand side -gradient
    linalg::Vector candidate;   ///< n: line-search trial point
    linalg::Vector residual;    ///< m: linear-block residuals G x - h
    linalg::Vector inv_slack;   ///< m: 1 / (h - G x)
    linalg::Vector inv_slack2;  ///< m: squared inverse slacks
    linalg::Cholesky factor;    ///< n x n Newton-system factor storage
    /// Sparse Newton path (large mostly-empty barrier Hessians): the CSR
    /// snapshot of the Hessian and its banded factor. Unused (empty) when
    /// every centering step stays dense.
    linalg::SparseMatrix hessian_sparse;
    linalg::SparseCholesky sparse_factor;
    linalg::Vector sparse_scratch;
  };
  BarrierBuffers& barrier() noexcept { return barrier_; }

  /// Buffers of the QP interior-point iteration that persist across solves
  /// (the per-iteration vectors are plain locals hoisted out of the loop).
  struct QpBuffers {
    linalg::Matrix h_mat;     ///< n x n condensed normal-equations matrix
    linalg::Cholesky factor;  ///< its Cholesky factor storage
  };
  QpBuffers& qp() noexcept { return qp_; }

  /// Buffers of the structured (sparse-Hessian) KKT solver in convex/kkt:
  /// the banded factor of H plus the dense Schur complement machinery of
  /// the equality block. Sized on first use per problem shape.
  struct StructuredKktBuffers {
    linalg::SparseCholesky h_factor;  ///< banded factor of the sparse H
    linalg::Matrix w_rows;            ///< p x n: rows are H^{-1} a_i
    linalg::Matrix schur;             ///< p x p: A H^{-1} A^T
    linalg::Cholesky schur_factor;    ///< its dense factor (p is small)
    linalg::Vector t;                 ///< n: H^{-1} r1
    linalg::Vector rhs_y;             ///< p: A t - r2
    linalg::Vector dy;                ///< p: Schur solve output
    linalg::Vector row;               ///< n: one A row / solve scratch
    linalg::Vector scratch;           ///< n: permuted-solve scratch
  };
  StructuredKktBuffers& structured_kkt() noexcept { return structured_kkt_; }

 private:
  bool warm_start_ = true;
  std::array<linalg::Vector, kNumSlots> hints_;
  std::array<bool, kNumSlots> has_hint_ = {};
  Stats stats_;
  BarrierBuffers barrier_;
  QpBuffers qp_;
  StructuredKktBuffers structured_kkt_;
};

}  // namespace protemp::convex
