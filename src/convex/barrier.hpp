// Log-barrier interior-point solver for smooth convex programs
//
//   minimize    f0(x)
//   subject to  f_i(x) <= 0        (smooth convex, via ScalarFunction)
//               G x <= h           (vectorized linear block)
//
// following Boyd & Vandenberghe ch. 11 [25], which is the algorithmic core
// of the CVX solver the paper used. The outer loop sharpens the barrier
// parameter t by a factor mu; each centering step is damped Newton with
// backtracking that rejects any step leaving the strictly feasible region.
//
// Pro-Temp's per-point program (after the s = f^2 substitution) has a linear
// objective, one concave-to-convex workload constraint, and thousands of
// linear temperature rows — exactly the shape this solver is tuned for.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "convex/functions.hpp"
#include "convex/problem.hpp"
#include "convex/workspace.hpp"

namespace protemp::convex {

struct BarrierProblem {
  std::shared_ptr<const ScalarFunction> objective;
  std::vector<std::shared_ptr<const ScalarFunction>> constraints;
  std::optional<LinearConstraints> linear;

  std::size_t num_variables() const;
  std::size_t num_constraints() const noexcept {
    return constraints.size() + (linear ? linear->count() : 0);
  }
  /// Throws std::invalid_argument on dimension mismatches.
  void validate() const;
  /// True if x satisfies every constraint with margin > `slack`.
  bool strictly_feasible(const linalg::Vector& x, double slack = 0.0) const;
  /// max_i f_i(x) over all (nonlinear + linear) constraints.
  double max_violation(const linalg::Vector& x) const;
};

struct BarrierOptions {
  double t_initial = 1.0;
  double mu = 20.0;                 ///< outer-loop barrier sharpening factor
  double tolerance = 1e-8;          ///< target duality-gap bound m/t
  double newton_tolerance = 1e-10;  ///< centering stop: lambda^2/2
  std::size_t max_newton_per_stage = 80;
  std::size_t max_stages = 64;
  /// Fixed-budget solve (real-time callers). When the *total* Newton-step
  /// budget or the wall-clock deadline expires mid-solve, the solver stops
  /// and returns the incumbent strictly feasible iterate with status
  /// kBudgetExpired and `gap` set to a finite suboptimality bound (the gap
  /// certified by the last completed centering stage, or the current
  /// stage's m/t target when none completed yet). 0 disables either limit;
  /// the clock is never read while solve_deadline_seconds == 0, so the
  /// default solve path is untouched.
  std::size_t max_newton_total = 0;
  double solve_deadline_seconds = 0.0;
  double line_search_alpha = 0.25;  ///< sufficient-decrease fraction
  double line_search_beta = 0.5;    ///< backtracking shrink factor
  double ridge = 1e-12;             ///< Hessian regularization floor
  /// Route Newton solves through the banded sparse Cholesky when the
  /// assembled barrier Hessian is large and mostly empty (separable
  /// objectives/constraints without a dense linear Gram block). Never
  /// triggers on the Pro-Temp program — its thousands of temperature rows
  /// fill the Hessian — so the historical dense path is bit-preserved
  /// there; tests A/B the two paths on genuinely sparse programs.
  bool sparse_newton = true;
  bool verbose = false;
};

/// Solves the program from a strictly feasible start. Precondition:
/// problem.strictly_feasible(x0) — throws std::invalid_argument otherwise.
/// On success, Solution::ineq_duals holds the barrier estimates of the KKT
/// multipliers, ordered nonlinear constraints first, then linear rows.
///
/// `workspace` (optional) supplies the centering loop's buffers so repeated
/// solves allocate nothing; warm-start *seeding* stays with the caller — to
/// warm-start, pass the previous optimum (checked strictly feasible) as x0.
/// A null workspace uses a throwaway one (one allocation set per solve).
Solution solve_barrier(const BarrierProblem& problem, const linalg::Vector& x0,
                       const BarrierOptions& options = {},
                       SolverWorkspace* workspace = nullptr);

/// Phase-I: finds a strictly feasible point by minimizing the worst
/// violation. `x0` only needs to lie in the domain of every constraint
/// function (so that values/gradients are finite). Returns std::nullopt if
/// the infimum of the worst violation is >= -margin (problem deemed
/// infeasible to that margin).
std::optional<linalg::Vector> find_strictly_feasible(
    const BarrierProblem& problem, const linalg::Vector& x0,
    double margin = 1e-9, const BarrierOptions& options = {},
    SolverWorkspace* workspace = nullptr);

}  // namespace protemp::convex
