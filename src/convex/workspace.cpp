#include "convex/workspace.hpp"

namespace protemp::convex {

const linalg::Vector* SolverWorkspace::hint(Slot slot) const noexcept {
  if (!warm_start_ || slot >= kNumSlots || !has_hint_[slot]) return nullptr;
  return &hints_[slot];
}

void SolverWorkspace::remember(Slot slot, const linalg::Vector& x) {
  if (slot >= kNumSlots) return;
  hints_[slot] = x;
  has_hint_[slot] = true;
}

void SolverWorkspace::forget() noexcept {
  has_hint_.fill(false);
}

}  // namespace protemp::convex
