#include "convex/functions.hpp"

#include <stdexcept>

namespace protemp::convex {

QuadraticFunction::QuadraticFunction(linalg::Matrix p, linalg::Vector q,
                                     double r)
    : p_(std::move(p)), q_(std::move(q)), r_(r) {
  if (!p_.square() || p_.rows() != q_.size()) {
    throw std::invalid_argument("QuadraticFunction: P must be n x n with n = dim(q)");
  }
}

double QuadraticFunction::value(const linalg::Vector& x) const {
  return 0.5 * x.dot(p_ * x) + q_.dot(x) + r_;
}

linalg::Vector QuadraticFunction::gradient(const linalg::Vector& x) const {
  linalg::Vector g = p_ * x;
  g += q_;
  return g;
}

}  // namespace protemp::convex
