// Smooth scalar functions with gradients and Hessians.
//
// The barrier solver consumes objectives and constraints through this
// interface. Affine and quadratic convenience implementations cover most
// uses; the Pro-Temp workload constraint supplies a custom subclass (the
// concave sum-of-square-roots term).
#pragma once

#include <memory>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace protemp::convex {

/// A twice-differentiable scalar function R^n -> R.
///
/// Implementations must be convex for use as a barrier-solver constraint
/// (f(x) <= 0) or objective; the solver does not verify convexity but its
/// convergence guarantees assume it.
class ScalarFunction {
 public:
  virtual ~ScalarFunction() = default;

  virtual std::size_t dimension() const noexcept = 0;
  virtual double value(const linalg::Vector& x) const = 0;
  virtual linalg::Vector gradient(const linalg::Vector& x) const = 0;
  virtual linalg::Matrix hessian(const linalg::Vector& x) const = 0;
};

/// f(x) = c^T x + d.
class AffineFunction final : public ScalarFunction {
 public:
  AffineFunction(linalg::Vector c, double d) : c_(std::move(c)), d_(d) {}

  std::size_t dimension() const noexcept override { return c_.size(); }
  double value(const linalg::Vector& x) const override {
    return c_.dot(x) + d_;
  }
  linalg::Vector gradient(const linalg::Vector&) const override { return c_; }
  linalg::Matrix hessian(const linalg::Vector&) const override {
    return linalg::Matrix(c_.size(), c_.size());
  }

  const linalg::Vector& coefficients() const noexcept { return c_; }
  double offset() const noexcept { return d_; }

 private:
  linalg::Vector c_;
  double d_;
};

/// f(x) = 1/2 x^T P x + q^T x + r, with P symmetric (only ever read
/// symmetrically).
class QuadraticFunction final : public ScalarFunction {
 public:
  QuadraticFunction(linalg::Matrix p, linalg::Vector q, double r);

  std::size_t dimension() const noexcept override { return q_.size(); }
  double value(const linalg::Vector& x) const override;
  linalg::Vector gradient(const linalg::Vector& x) const override;
  linalg::Matrix hessian(const linalg::Vector&) const override { return p_; }

 private:
  linalg::Matrix p_;
  linalg::Vector q_;
  double r_;
};

/// A block of linear inequality constraints G x <= h, evaluated vectorized.
/// The barrier solver treats this specially (no virtual dispatch per row),
/// which matters when the thermal horizon contributes thousands of rows.
struct LinearConstraints {
  linalg::Matrix g;  ///< m x n
  linalg::Vector h;  ///< m

  std::size_t count() const noexcept { return h.size(); }
  /// Residuals r = G x - h (feasible iff r <= 0).
  linalg::Vector residuals(const linalg::Vector& x) const {
    return g * x - h;
  }
};

}  // namespace protemp::convex
