#include "convex/barrier.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "util/logging.hpp"

namespace protemp::convex {
namespace {

constexpr const char* kModule = "convex.barrier";
constexpr double kInfinity = std::numeric_limits<double>::infinity();

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared fixed-budget state threaded through the centering stages. The
/// clock is only read when a deadline is armed, so budget-free solves
/// (the defaults) perform exactly the historical instruction sequence.
struct BudgetState {
  std::size_t max_total = 0;  ///< total Newton steps; 0 = unlimited
  double deadline = 0.0;      ///< monotonic cutoff; 0 = no deadline
  std::size_t used = 0;

  /// True once another Newton step would overrun the budget.
  bool expired() const {
    if (max_total != 0 && used >= max_total) return true;
    return deadline != 0.0 && monotonic_seconds() >= deadline;
  }
};

/// Barrier value at x for parameter t; gradient/Hessian land in the
/// workspace buffers when requested. `feasible` is false (value +inf,
/// buffers unspecified) if x is not strictly feasible.
struct BarrierEval {
  double value = kInfinity;
  bool feasible = false;
};

BarrierEval evaluate(const BarrierProblem& prob, const linalg::Vector& x,
                     double t, bool with_derivatives,
                     SolverWorkspace::BarrierBuffers& buf) {
  BarrierEval out;
  const std::size_t n = x.size();
  double value = t * prob.objective->value(x);
  if (with_derivatives) {
    buf.gradient = prob.objective->gradient(x);
    buf.gradient *= t;
    buf.hessian = prob.objective->hessian(x);
    buf.hessian *= t;
  }

  for (const auto& f : prob.constraints) {
    const double fi = f->value(x);
    if (!(fi < 0.0)) return out;  // infeasible (or NaN)
    value -= std::log(-fi);
    if (with_derivatives) {
      const linalg::Vector gi = f->gradient(x);
      // -log(-f): grad = g / (-f), hess = H/(-f) + g g^T / f^2.
      const double inv = 1.0 / (-fi);
      buf.gradient.axpy(inv, gi);
      buf.hessian += f->hessian(x) * inv;
      const double inv2 = inv * inv;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          buf.hessian(i, j) += inv2 * gi[i] * gi[j];
        }
      }
    }
  }

  if (prob.linear) {
    // r = G x - h, computed into the workspace (feasible iff r < 0).
    prob.linear->g.multiply_into(x, buf.residual);
    buf.residual -= prob.linear->h;
    const std::size_t m = buf.residual.size();
    buf.inv_slack.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double ri = buf.residual[i];
      if (!(ri < 0.0)) return out;
      value -= std::log(-ri);
      buf.inv_slack[i] = -1.0 / ri;
    }
    if (with_derivatives) {
      prob.linear->g.multiply_transposed_add_into(buf.inv_slack, buf.gradient);
      buf.inv_slack2.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        buf.inv_slack2[i] = buf.inv_slack[i] * buf.inv_slack[i];
      }
      prob.linear->g.gram_weighted_into(buf.inv_slack2, buf.gram);
      buf.hessian += buf.gram;
    }
  }

  out.value = value;
  out.feasible = true;
  return out;
}

/// One centering stage (damped Newton at fixed t). Returns the Newton
/// decrement reached; updates x in place.
struct CenterResult {
  bool ok = false;
  bool budget_expired = false;  ///< stopped by the fixed solve budget
  std::size_t newton_steps = 0;
};

CenterResult center(const BarrierProblem& prob, linalg::Vector& x, double t,
                    const BarrierOptions& opt,
                    SolverWorkspace::BarrierBuffers& buf,
                    BudgetState& budget) {
  CenterResult result;
  for (std::size_t step = 0; step < opt.max_newton_per_stage; ++step) {
    if (budget.expired()) {
      // x is the incumbent reached by the last full step — still strictly
      // feasible (line search never leaves the domain).
      result.budget_expired = true;
      return result;
    }
    const BarrierEval eval = evaluate(prob, x, t, /*with_derivatives=*/true,
                                      buf);
    if (!eval.feasible) return result;  // should not happen from feasible x

    // Newton direction with ridge escalation on factorization failure. The
    // ridge is scaled to the Hessian's diagonal so it stays meaningful when
    // barrier terms near the boundary inflate the conditioning.
    double diag_scale = 1.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      diag_scale = std::max(diag_scale, std::abs(buf.hessian(i, i)));
    }
    if (!std::isfinite(diag_scale)) return result;
    buf.neg_grad = buf.gradient;
    buf.neg_grad *= -1.0;
    double ridge = opt.ridge * diag_scale;
    bool factored = false;
    // Structure dispatch: a large, mostly-empty Hessian (separable
    // programs — no dense Gram block to fill it) goes through the banded
    // sparse Cholesky. The decision is a plain O(n^2) zero count (noise
    // next to the O(n^3) factorization it avoids); the CSR snapshot is
    // only materialized on the sparse path, so dense-Hessian programs —
    // Pro-Temp's Gram-filled ones included — allocate nothing here.
    bool use_sparse = false;
    if (opt.sparse_newton && x.size() >= linalg::kSparseBackendMinDimension) {
      std::size_t nnz = 0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double* row = buf.hessian.row_data(i);
        for (std::size_t j = 0; j < x.size(); ++j) {
          if (row[j] != 0.0) ++nnz;
        }
      }
      use_sparse = linalg::resolve_backend(linalg::MatrixBackend::kAuto,
                                           x.size(), nnz) ==
                   linalg::MatrixBackend::kSparse;
      if (use_sparse) {
        buf.hessian_sparse = linalg::SparseMatrix::from_dense(buf.hessian);
      }
    }
    for (int attempt = 0; attempt < 9; ++attempt, ridge *= 100.0) {
      if (use_sparse) {
        if (buf.sparse_factor.refactor(buf.hessian_sparse, ridge)) {
          buf.sparse_factor.solve_into(buf.neg_grad, buf.direction,
                                       buf.sparse_scratch);
          factored = true;
          break;
        }
      } else if (buf.factor.refactor(buf.hessian, ridge)) {
        buf.factor.solve_into(buf.neg_grad, buf.direction);
        factored = true;
        break;
      }
    }
    if (!factored) return result;

    const double decrement2 = -buf.gradient.dot(buf.direction);  // lambda^2
    result.newton_steps = step + 1;
    ++budget.used;
    if (!std::isfinite(decrement2)) return result;  // barrier overflow
    if (decrement2 / 2.0 <= opt.newton_tolerance) {
      result.ok = true;
      return result;
    }

    // Backtracking line search (rejects steps that leave the domain).
    double step_size = 1.0;
    const double slope = buf.gradient.dot(buf.direction);  // negative
    bool moved = false;
    for (int ls = 0; ls < 60; ++ls) {
      buf.candidate = x;
      buf.candidate.axpy(step_size, buf.direction);
      const BarrierEval trial =
          evaluate(prob, buf.candidate, t, /*with_derivatives=*/false, buf);
      if (trial.feasible &&
          trial.value <= eval.value + opt.line_search_alpha * step_size * slope) {
        x = buf.candidate;
        moved = true;
        break;
      }
      step_size *= opt.line_search_beta;
    }
    if (!moved) {
      // Line search stalled at numerical precision: accept current center.
      result.ok = true;
      return result;
    }
  }
  // Budget exhausted; treat as centered enough to continue outer loop.
  result.ok = true;
  return result;
}

}  // namespace

std::size_t BarrierProblem::num_variables() const {
  if (objective) return objective->dimension();
  if (linear) return linear->g.cols();
  throw std::logic_error("BarrierProblem: no objective");
}

void BarrierProblem::validate() const {
  if (!objective) throw std::invalid_argument("BarrierProblem: no objective");
  const std::size_t n = objective->dimension();
  for (const auto& f : constraints) {
    if (!f) throw std::invalid_argument("BarrierProblem: null constraint");
    if (f->dimension() != n) {
      throw std::invalid_argument("BarrierProblem: constraint dimension mismatch");
    }
  }
  if (linear) {
    if (linear->g.cols() != n || linear->g.rows() != linear->h.size()) {
      throw std::invalid_argument("BarrierProblem: linear block shape mismatch");
    }
  }
}

bool BarrierProblem::strictly_feasible(const linalg::Vector& x,
                                       double slack) const {
  return max_violation(x) < -slack;
}

double BarrierProblem::max_violation(const linalg::Vector& x) const {
  double worst = -kInfinity;
  for (const auto& f : constraints) {
    worst = std::max(worst, f->value(x));
  }
  if (linear) {
    const linalg::Vector r = linear->residuals(x);
    if (r.size() > 0) worst = std::max(worst, r.max());
  }
  if (worst == -kInfinity) worst = -1.0;  // unconstrained: trivially feasible
  return worst;
}

Solution solve_barrier(const BarrierProblem& problem, const linalg::Vector& x0,
                       const BarrierOptions& options,
                       SolverWorkspace* workspace) {
  problem.validate();
  if (x0.size() != problem.num_variables()) {
    throw std::invalid_argument("solve_barrier: x0 dimension mismatch");
  }
  if (!problem.strictly_feasible(x0)) {
    throw std::invalid_argument(
        "solve_barrier: x0 must be strictly feasible (use "
        "find_strictly_feasible for phase-I)");
  }

  SolverWorkspace scratch_workspace;
  SolverWorkspace& ws = workspace ? *workspace : scratch_workspace;
  SolverWorkspace::BarrierBuffers& buf = ws.barrier();
  ++ws.stats().solves;

  Solution result;
  linalg::Vector x = x0;
  const double m = static_cast<double>(problem.num_constraints());

  // Unconstrained problems: a single Newton stage at t=1 is exact.
  double t = (m == 0.0) ? 1.0 : options.t_initial;
  std::size_t total_newton = 0;
  // Gap certified by the last *completed* centering stage; used to degrade
  // gracefully when a late stage hits floating-point limits.
  double certified_gap = kInfinity;

  BudgetState budget;
  budget.max_total = options.max_newton_total;
  if (options.solve_deadline_seconds > 0.0) {
    budget.deadline = monotonic_seconds() + options.solve_deadline_seconds;
  }

  for (std::size_t stage = 0; stage < options.max_stages; ++stage) {
    const CenterResult centered = center(problem, x, t, options, buf, budget);
    total_newton += centered.newton_steps;
    ws.stats().newton_steps += centered.newton_steps;
    if (centered.budget_expired) {
      // Fixed budget ran out mid-solve: serve the incumbent. The reported
      // gap is the bound certified by the last completed stage; before any
      // stage completed it degrades to the current stage's m/t target,
      // which is what that stage was driving the gap down to.
      ++ws.stats().budget_expired;
      result.status = SolveStatus::kBudgetExpired;
      result.x = x;
      result.objective = problem.objective->value(x);
      result.iterations = total_newton;
      result.gap = std::isfinite(certified_gap) ? certified_gap : m / t;
      result.primal_residual = std::max(0.0, problem.max_violation(x));
      return result;
    }
    if (!centered.ok) {
      // Late-stage numerical trouble (barrier Hessian overflow near the
      // boundary). If an earlier stage already certified a decent gap, the
      // current strictly feasible iterate is an excellent solution; only
      // fail hard when nothing was certified.
      result.x = x;
      result.objective = problem.objective->value(x);
      result.iterations = total_newton;
      result.gap = certified_gap;
      if (certified_gap <= 1e-3) {
        PROTEMP_LOG_WARN(kModule,
                         "centering failed at t=%.3e; returning previous "
                         "stage's solution (gap=%.3e)", t, certified_gap);
        result.status = SolveStatus::kOptimal;
        result.primal_residual = std::max(0.0, problem.max_violation(x));
      } else {
        result.status = SolveStatus::kNumericalFailure;
      }
      return result;
    }
    certified_gap = m / t;
    const double gap = m / t;
    if (options.verbose) {
      PROTEMP_LOG_INFO(kModule, "stage=%zu t=%.3e gap=%.3e newton=%zu", stage,
                       t, gap, centered.newton_steps);
    }
    if (m == 0.0 || gap < options.tolerance) {
      result.status = SolveStatus::kOptimal;
      result.x = x;
      result.objective = problem.objective->value(x);
      result.iterations = total_newton;
      result.gap = gap;
      // Barrier dual estimates: lambda_i = 1 / (t * (-f_i(x))).
      linalg::Vector duals(problem.num_constraints());
      std::size_t idx = 0;
      for (const auto& f : problem.constraints) {
        duals[idx++] = 1.0 / (t * (-f->value(x)));
      }
      if (problem.linear) {
        const linalg::Vector r = problem.linear->residuals(x);
        for (std::size_t i = 0; i < r.size(); ++i) {
          duals[idx++] = 1.0 / (t * (-r[i]));
        }
      }
      result.ineq_duals = std::move(duals);
      result.primal_residual = std::max(0.0, problem.max_violation(x));
      return result;
    }
    t *= options.mu;
  }

  result.status = SolveStatus::kMaxIterations;
  result.x = x;
  result.objective = problem.objective->value(x);
  result.iterations = total_newton;
  result.gap = m / t;
  return result;
}

namespace {

/// Lifted constraint for phase-I: g(x, tau) = f(x) - tau <= 0.
class LiftedConstraint final : public ScalarFunction {
 public:
  explicit LiftedConstraint(std::shared_ptr<const ScalarFunction> inner)
      : inner_(std::move(inner)) {}

  std::size_t dimension() const noexcept override {
    return inner_->dimension() + 1;
  }
  double value(const linalg::Vector& xt) const override {
    return inner_->value(strip(xt)) - xt[xt.size() - 1];
  }
  linalg::Vector gradient(const linalg::Vector& xt) const override {
    const linalg::Vector gi = inner_->gradient(strip(xt));
    linalg::Vector g(xt.size());
    for (std::size_t i = 0; i < gi.size(); ++i) g[i] = gi[i];
    g[xt.size() - 1] = -1.0;
    return g;
  }
  linalg::Matrix hessian(const linalg::Vector& xt) const override {
    const linalg::Matrix hi = inner_->hessian(strip(xt));
    linalg::Matrix h(xt.size(), xt.size());
    for (std::size_t i = 0; i < hi.rows(); ++i) {
      for (std::size_t j = 0; j < hi.cols(); ++j) h(i, j) = hi(i, j);
    }
    return h;
  }

 private:
  static linalg::Vector strip(const linalg::Vector& xt) {
    linalg::Vector x(xt.size() - 1);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = xt[i];
    return x;
  }
  std::shared_ptr<const ScalarFunction> inner_;
};

}  // namespace

std::optional<linalg::Vector> find_strictly_feasible(
    const BarrierProblem& problem, const linalg::Vector& x0, double margin,
    const BarrierOptions& options, SolverWorkspace* workspace) {
  problem.validate();
  const std::size_t n = problem.num_variables();
  if (x0.size() != n) {
    throw std::invalid_argument("find_strictly_feasible: x0 dimension mismatch");
  }
  if (problem.strictly_feasible(x0, margin)) return x0;

  // Lifted problem over (x, tau): minimize tau s.t. f_i(x) <= tau.
  BarrierProblem lifted;
  {
    linalg::Vector c(n + 1);
    c[n] = 1.0;
    lifted.objective = std::make_shared<AffineFunction>(std::move(c), 0.0);
  }
  for (const auto& f : problem.constraints) {
    lifted.constraints.push_back(std::make_shared<LiftedConstraint>(f));
  }
  {
    // Lift the linear block (rows become g_i x - tau <= h_i) and append a
    // floor tau >= -1: we only need tau < -margin, and without the floor the
    // lifted problem can be unbounded below.
    const std::size_t rows = problem.linear ? problem.linear->count() : 0;
    linalg::Matrix g(rows + 1, n + 1);
    linalg::Vector h(rows + 1);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) g(i, j) = problem.linear->g(i, j);
      g(i, n) = -1.0;
      h[i] = problem.linear->h[i];
    }
    g(rows, n) = -1.0;
    h[rows] = 1.0;
    lifted.linear = LinearConstraints{std::move(g), std::move(h)};
  }

  linalg::Vector xt(n + 1);
  for (std::size_t i = 0; i < n; ++i) xt[i] = x0[i];
  const double v0 = problem.max_violation(x0);
  if (!std::isfinite(v0)) {
    throw std::invalid_argument(
        "find_strictly_feasible: x0 outside constraint domain");
  }
  xt[n] = v0 + std::max(1.0, std::abs(v0));

  // We only need tau < -margin, not an exact minimum; loosen the gap target.
  BarrierOptions phase1 = options;
  phase1.tolerance = std::max(options.tolerance, margin * 0.5);
  const Solution sol = solve_barrier(lifted, xt, phase1, workspace);

  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = sol.x[i];
  if (problem.strictly_feasible(x, margin)) return x;
  return std::nullopt;
}

}  // namespace protemp::convex
