#include "arch/mesh.hpp"

#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace protemp::arch {

using thermal::Block;
using thermal::BlockKind;
using thermal::Floorplan;
using util::mm;

namespace {

/// Niagara die area [m^2] (12 mm x 10.5 mm): the reference point of the
/// package calibration (see arch/niagara.hpp).
constexpr double kReferenceDieAreaM2 = 12.0e-3 * 10.5e-3;
constexpr std::size_t kMaxMeshDim = 64;

void validate_config(const MeshConfig& config) {
  if (config.rows == 0 || config.cols == 0 || config.rows > kMaxMeshDim ||
      config.cols > kMaxMeshDim) {
    throw std::invalid_argument(
        "MeshConfig: rows and cols must be in [1, " +
        std::to_string(kMaxMeshDim) + "], got " + std::to_string(config.rows) +
        "x" + std::to_string(config.cols));
  }
  if (!(config.core_edge_mm > 0.0)) {
    throw std::invalid_argument("MeshConfig: core edge must be positive");
  }
}

double die_area_m2(const MeshConfig& config) {
  const double edge = mm(config.core_edge_mm);
  const double width = static_cast<double>(config.cols) * edge;
  const double height = (static_cast<double>(config.rows) + 2.0) * edge;
  return width * height;  // core grid + the two cache strips
}

}  // namespace

std::optional<std::pair<std::size_t, std::size_t>> parse_mesh_dims(
    std::string_view name) noexcept {
  if (name.rfind("mesh:", 0) == 0) name.remove_prefix(5);
  const std::size_t x = name.find('x');
  if (x == std::string_view::npos || x == 0 || x + 1 >= name.size()) {
    return std::nullopt;
  }
  const auto parse_dim =
      [](std::string_view text) -> std::optional<std::size_t> {
    if (text.empty() || text.size() > 2) return std::nullopt;  // <= 64 fits
    std::size_t value = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
  };
  const auto rows = parse_dim(name.substr(0, x));
  const auto cols = parse_dim(name.substr(x + 1));
  if (!rows || !cols || *rows == 0 || *cols == 0 || *rows > kMaxMeshDim ||
      *cols > kMaxMeshDim) {
    return std::nullopt;
  }
  return std::make_pair(*rows, *cols);
}

Floorplan make_mesh_floorplan(const MeshConfig& config) {
  validate_config(config);
  const double edge = mm(config.core_edge_mm);
  const double die_w = static_cast<double>(config.cols) * edge;
  Floorplan fp;

  // South strip, core rows bottom-to-top, north strip.
  fp.add_block({"l2_s", BlockKind::kCache, 0.0, 0.0, die_w, edge});
  for (std::size_t r = 0; r < config.rows; ++r) {
    const double y = (static_cast<double>(r) + 1.0) * edge;
    for (std::size_t c = 0; c < config.cols; ++c) {
      fp.add_block({"c" + std::to_string(r) + "_" + std::to_string(c),
                    BlockKind::kCore, static_cast<double>(c) * edge, y, edge,
                    edge});
    }
  }
  const double north_y = (static_cast<double>(config.rows) + 1.0) * edge;
  fp.add_block({"l2_n", BlockKind::kCache, 0.0, north_y, die_w, edge});

  fp.validate_no_overlap();
  return fp;
}

thermal::PackageParams make_mesh_package(const MeshConfig& config) {
  validate_config(config);
  // Niagara-calibrated die and TIM parameters (arch/niagara.cpp), with the
  // package-level cooling scaled to die area: a bigger chip ships with a
  // proportionally bigger spreader/sink, so thermal resistance to ambient
  // scales ~1/area and thermal mass ~area. That keeps power density — and
  // with it the sawtooth dynamics the controller is designed around — in
  // the calibrated regime from 2 cores to 4096.
  const double area_scale = die_area_m2(config) / kReferenceDieAreaM2;
  thermal::PackageParams pkg;
  pkg.die_thickness = 0.35e-3;
  pkg.silicon_conductivity = 100.0;
  pkg.silicon_volumetric_heat = 1.75e6;
  pkg.block_capacitance_factor = 1.0;
  pkg.tim_resistance_per_area = 8.0e-5;  // per-area: scales by itself
  pkg.spreader_capacitance = 4.0 * area_scale;
  pkg.spreader_to_sink_resistance = 0.35 / area_scale;
  pkg.sink_capacitance = 24.0 * area_scale;
  pkg.convection_resistance = 0.9 / area_scale;
  pkg.ambient_celsius = config.ambient_celsius;
  return pkg;
}

Platform make_mesh_platform(const MeshConfig& config) {
  Floorplan fp = make_mesh_floorplan(config);
  const thermal::PackageParams pkg = make_mesh_package(config);

  const power::DvfsPowerModel core_model(config.core_pmax_watts,
                                         config.fmax_hz,
                                         config.power_exponent,
                                         config.idle_fraction);

  // Background power: other_power_fraction of the total core pmax, spread
  // over the cache strips proportionally to area (both strips are equal
  // here, but mirror the Niagara logic for robustness).
  const auto cores = fp.blocks_of_kind(BlockKind::kCore);
  const double background_total = config.other_power_fraction *
                                  config.core_pmax_watts *
                                  static_cast<double>(cores.size());
  double non_core_area = 0.0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (fp.block(i).kind != BlockKind::kCore) {
      non_core_area += fp.block(i).area();
    }
  }
  linalg::Vector background(fp.size() + 2);  // + spreader + sink
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (fp.block(i).kind != BlockKind::kCore) {
      background[i] = background_total * fp.block(i).area() / non_core_area;
    }
  }

  const std::string name = "mesh:" + std::to_string(config.rows) + "x" +
                           std::to_string(config.cols);
  return Platform(name, std::move(fp), pkg, core_model, std::move(background),
                  config.background_activity_fraction);
}

}  // namespace protemp::arch
