#include "arch/het.hpp"

#include <cmath>
#include <stdexcept>

namespace protemp::arch {

namespace {

bool valid_class_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

std::optional<HetGroup> parse_group(std::string_view text) {
  const std::size_t x = text.find('x');
  if (x == std::string_view::npos || x == 0 || x > 4 ||
      x + 1 >= text.size()) {
    return std::nullopt;
  }
  std::size_t count = 0;
  for (const char c : text.substr(0, x)) {
    if (c < '0' || c > '9') return std::nullopt;
    count = count * 10 + static_cast<std::size_t>(c - '0');
  }
  if (count == 0) return std::nullopt;
  const std::string_view name = text.substr(x + 1);
  for (const char c : name) {
    if (!valid_class_char(c)) return std::nullopt;
  }
  return HetGroup{count, std::string(name)};
}

}  // namespace

std::optional<HetSpec> parse_het_spec(std::string_view name) {
  if (name.rfind("het:", 0) != 0) return std::nullopt;
  name.remove_prefix(4);
  HetSpec spec;
  const std::size_t at = name.find('@');
  const std::string_view base =
      at == std::string_view::npos ? name : name.substr(0, at);
  if (base.empty() || base.rfind("het:", 0) == 0) return std::nullopt;
  spec.base = std::string(base);
  if (at == std::string_view::npos) return spec;

  std::string_view groups = name.substr(at + 1);
  if (groups.empty()) return std::nullopt;
  while (!groups.empty()) {
    const std::size_t plus = groups.find('+');
    const std::string_view item =
        plus == std::string_view::npos ? groups : groups.substr(0, plus);
    const std::optional<HetGroup> group = parse_group(item);
    if (!group) return std::nullopt;
    for (const HetGroup& seen : spec.groups) {
      if (seen.class_name == group->class_name) return std::nullopt;
    }
    spec.groups.push_back(*group);
    if (plus == std::string_view::npos) break;
    groups.remove_prefix(plus + 1);
    if (groups.empty()) return std::nullopt;  // trailing '+'
  }
  return spec;
}

void apply_het_classes(Platform& platform,
                       const std::vector<HetGroup>& groups,
                       const std::vector<HetClassParams>& params) {
  if (groups.empty() || groups.size() != params.size()) {
    throw std::invalid_argument(
        "apply_het_classes: one HetClassParams per group required");
  }
  std::size_t total = 0;
  for (const HetGroup& group : groups) total += group.count;
  if (total != platform.num_cores()) {
    throw std::invalid_argument(
        "het group counts sum to " + std::to_string(total) + " but '" +
        platform.name() + "' has " + std::to_string(platform.num_cores()) +
        " cores");
  }

  const power::DvfsPowerModel& base = platform.core_power();
  std::vector<CoreClass> classes;
  classes.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const HetClassParams& p = params[i];
    if (!(p.fmax_scale > 0.0) || !std::isfinite(p.fmax_scale) ||
        !(p.pmax_scale > 0.0) || !std::isfinite(p.pmax_scale)) {
      throw std::invalid_argument("het class '" + groups[i].class_name +
                                  "': fmax/pmax scales must be finite and "
                                  "positive");
    }
    classes.push_back(CoreClass{groups[i].class_name,
                                base.scaled(p.pmax_scale, p.fmax_scale),
                                p.tmax_celsius, p.leakage_scale});
  }

  std::vector<std::size_t> assignment;
  assignment.reserve(platform.num_cores());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t c = 0; c < groups[i].count; ++c) assignment.push_back(i);
  }
  platform.set_core_classes(std::move(classes), std::move(assignment));
}

}  // namespace protemp::arch
