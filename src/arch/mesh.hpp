// Parametric mesh many-core platform family ("mesh:<rows>x<cols>").
//
// A rows x cols grid of identical square cores flanked by an L2 cache strip
// above and below — the canonical many-core tile layout (cf. the many-core
// HPC thermal-management line of work in PAPERS.md). Core count is a
// *scenario parameter*: "mesh:2x4" is an 8-core chip in the Niagara class,
// "mesh:16x16" is a 256-core part. Per-block R/C values are derived from
// block geometry by the HotSpot-style RcNetwork builder exactly as for the
// Niagara floorplan; the package (spreader/sink/convection) is scaled with
// die area so power *density* — the quantity the thermal problem actually
// feels — stays in the calibrated Niagara regime at every size, and forward
// Euler at the paper's 0.4 ms step remains stable.
//
// The resulting conductance Laplacian has ~5 nonzeros per row (4-neighbor
// grid plus the vertical path), which is what the sparse backend exploits;
// a mesh platform large enough to matter auto-selects it.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <utility>

#include "arch/platform.hpp"

namespace protemp::arch {

struct MeshConfig {
  std::size_t rows = 8;            ///< core-grid rows
  std::size_t cols = 8;            ///< core-grid columns
  double core_edge_mm = 1.5;       ///< square core edge [mm]
  double fmax_hz = 1e9;            ///< max core frequency [Hz]
  double core_pmax_watts = 0.8;    ///< per-core power at fmax [W]
  double other_power_fraction = 0.25;  ///< non-core power / total core pmax
  double background_activity_fraction = 0.75;
  double power_exponent = 2.0;     ///< paper Eq. (2): quadratic
  double idle_fraction = 0.05;     ///< idle dynamic power fraction
  double ambient_celsius = 45.0;
};

/// Parses the dimension suffix of a mesh platform name: accepts
/// "mesh:<rows>x<cols>" or bare "<rows>x<cols>" with both dimensions in
/// [1, 64]; nullopt on anything else.
std::optional<std::pair<std::size_t, std::size_t>> parse_mesh_dims(
    std::string_view name) noexcept;

/// Core grid plus north/south L2 strips; blocks are named c<row>_<col>,
/// l2_n and l2_s.
thermal::Floorplan make_mesh_floorplan(const MeshConfig& config);

/// Niagara-calibrated package with the area-proportional cooling scaling
/// described in the header comment.
thermal::PackageParams make_mesh_package(const MeshConfig& config);

/// Assembles the full platform, named "mesh:<rows>x<cols>".
Platform make_mesh_platform(const MeshConfig& config = {});

}  // namespace protemp::arch
