// Heterogeneous platform family ("het:<base>[@<groups>]").
//
// A het: platform is an existing platform (the *base*: "niagara8",
// "mesh:<rows>x<cols>", ...) whose cores are partitioned into named
// power/thermal classes — the big.LITTLE layout of the heterogeneous
// DVFS line of work in PAPERS.md. The grammar:
//
//   het:niagara8                      pure wrapper: one class, the base
//                                     model verbatim (bitwise-identical
//                                     physics to the base platform)
//   het:niagara8@4xbig+4xlittle       4 "big" cores then 4 "little" cores
//   het:mesh:4x4@8xfast+8xslow        bases with ':' in the name compose
//
// Group order assigns classes to cores in floorplan insertion order, and
// the counts must sum to the base core count. Class parameters arrive as
// platform options keyed by class name: `<class>-fmax-scale`,
// `<class>-pmax-scale` (multipliers on the base DVFS law),
// `<class>-tmax` (class core-temperature ceiling [degC]; unset = the
// optimizer's global tmax) and `<class>-leakage-scale`. The floorplan,
// package and background power are the base's — heterogeneity changes
// what the cores *can do*, not where they sit.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/platform.hpp"

namespace protemp::arch {

struct HetGroup {
  std::size_t count = 0;
  std::string class_name;
};

struct HetSpec {
  std::string base;              ///< base platform name (may contain ':')
  std::vector<HetGroup> groups;  ///< empty = pure wrapper, no classes
};

/// Parses "het:<base>[@<count>x<class>[+<count>x<class>...]]". Group
/// counts are 1-4 digits; class names are non-empty [A-Za-z0-9_-] and
/// must be distinct. Nested "het:" bases are rejected. nullopt on
/// anything malformed.
std::optional<HetSpec> parse_het_spec(std::string_view name);

/// Per-class knobs read from platform options (defaults = the base law).
struct HetClassParams {
  double fmax_scale = 1.0;
  double pmax_scale = 1.0;
  std::optional<double> tmax_celsius;
  double leakage_scale = 1.0;
};

/// Installs one CoreClass per group on `platform` (params[i] configures
/// groups[i]), deriving each class law from the platform's reference
/// model. Throws std::invalid_argument when the counts do not sum to the
/// platform core count or a scale is not finite and positive.
void apply_het_classes(Platform& platform,
                       const std::vector<HetGroup>& groups,
                       const std::vector<HetClassParams>& params);

}  // namespace protemp::arch
