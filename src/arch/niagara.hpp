// Sun Niagara-8 platform model (paper Section 5, Figure 5).
//
// Eight processing cores P1..P8 arranged in two rows of four, flanked left
// and right by L2 cache banks, with an interconnect/crossbar strip between
// the rows, an IO/DRAM-bridge strip on top and an L2 buffer strip on the
// bottom. Cores P1, P4, P5, P8 sit at the row ends next to the (cooler)
// caches; P2, P3, P6, P7 are sandwiched between other cores — the asymmetry
// Section 5.3 exploits.
//
// Electrical parameters follow the paper: fmax = 1 GHz, 4 W per core at
// fmax, non-core blocks dissipating ~30 % of the total core power
// (distributed by area). Package parameters are calibrated so that
//   * the all-cores-at-fmax steady state peaks near 125-135 degC,
//   * a core's local thermal time constant is tens of milliseconds (so a
//     reactive scheme overshoots within one 100 ms DFS window, Fig. 1),
//   * the package-level constant is tens of seconds,
//   * forward Euler at the paper's 0.4 ms step is stable.
#pragma once

#include "arch/platform.hpp"

namespace protemp::arch {

struct NiagaraConfig {
  double fmax_hz = 1e9;            ///< max core frequency [Hz]
  double core_pmax_watts = 4.0;    ///< per-core power at fmax [W]
  double other_power_fraction = 0.3;  ///< non-core power / total core pmax
  /// Share of the non-core power that scales with core activity (caches and
  /// crossbar mostly burn power serving the cores).
  double background_activity_fraction = 0.75;
  double power_exponent = 2.0;     ///< paper Eq. (2): quadratic
  double idle_fraction = 0.05;     ///< idle dynamic power fraction
  double ambient_celsius = 45.0;
};

/// Builds the Niagara-8 floorplan of Figure 5 (12 x 10.5 mm die).
thermal::Floorplan make_niagara_floorplan();

/// Calibrated package parameters (see header comment for the targets).
thermal::PackageParams make_niagara_package(double ambient_celsius = 45.0);

/// Assembles the full platform.
Platform make_niagara_platform(const NiagaraConfig& config = {});

}  // namespace protemp::arch
