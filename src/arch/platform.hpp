// Platform description: floorplan + thermal network + power characteristics.
//
// A Platform bundles everything the simulator and the Pro-Temp optimizer
// need to know about one chip: geometry, the assembled RC network, which
// nodes are DFS-controlled cores, and the fixed background power of the
// non-core blocks.
//
// Heterogeneity (DESIGN.md §10) is layered on top of the homogeneous
// contract, never instead of it: every Platform still carries one
// *reference* DvfsPowerModel (`core_power()`), and the per-core views
// (`core_power_of`, `core_fmax`, ...) resolve to that same object unless
// `set_core_classes` installed distinct CoreClass descriptors. Call sites
// that branch on `heterogeneous()` therefore keep the historical
// homogeneous expressions — and their bitwise results — untouched.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "linalg/vector.hpp"
#include "power/power_model.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_network.hpp"

namespace protemp::arch {

/// One power/thermal class of cores on a heterogeneous platform: its own
/// DVFS law (fmax/pmax/alpha/idle), an optional class-specific core
/// temperature ceiling (unset = the optimizer's global tmax), and a
/// multiplier on the platform leakage model (little cores on a different
/// process corner leak differently).
struct CoreClass {
  std::string name;
  power::DvfsPowerModel power;
  std::optional<double> tmax_celsius;
  double leakage_scale = 1.0;
};

/// A non-core network node with its own temperature ceiling — the
/// DRAM-layer constraint of processor-memory stacks. The optimizer adds
/// one monitored constraint row per ceiling; the plant itself is
/// unchanged (a ceiling is a *contract*, not a heat source).
struct ThermalCeiling {
  std::size_t node = 0;          ///< network node index (a floorplan block)
  double tmax_celsius = 0.0;
  std::string name;              ///< block name, for diagnostics
};

class Platform {
 public:
  /// `background_power` must have one entry per network node (block nodes
  /// plus spreader and sink); entries at core nodes are ignored (cores are
  /// DFS-driven). `background_activity_fraction` is the share of the
  /// non-core power that tracks core activity (caches and interconnect
  /// mostly burn power serving the cores); the rest is static. Effective
  /// background at activity level a in [0, 1] is
  ///   bg * ((1 - fraction) + fraction * a).
  Platform(std::string name, thermal::Floorplan floorplan,
           thermal::PackageParams package, power::DvfsPowerModel core_power,
           linalg::Vector background_power,
           double background_activity_fraction = 0.75);

  const std::string& name() const noexcept { return name_; }
  const thermal::Floorplan& floorplan() const noexcept { return floorplan_; }
  const thermal::RcNetwork& network() const noexcept { return network_; }
  const power::DvfsPowerModel& core_power() const noexcept {
    return core_power_;
  }

  std::size_t num_cores() const noexcept { return core_nodes_.size(); }
  std::size_t num_nodes() const noexcept { return network_.num_nodes(); }
  /// Network node indices of the cores, in floorplan insertion order
  /// (core c of the simulator is node core_nodes()[c]).
  const std::vector<std::size_t>& core_nodes() const noexcept {
    return core_nodes_;
  }
  const std::string& core_name(std::size_t core) const {
    return floorplan_.block(core_nodes_.at(core)).name;
  }

  /// Peak per-node background power [W] (core entries zero); equals
  /// background_power_at(1.0).
  const linalg::Vector& background_power() const noexcept {
    return background_;
  }

  /// Background power at a core-activity level in [0, 1] (clamped).
  /// Throws std::invalid_argument on a non-finite activity — a NaN here
  /// would otherwise propagate silently through the whole power vector.
  linalg::Vector background_power_at(double activity) const;

  double background_activity_fraction() const noexcept {
    return background_activity_fraction_;
  }

  /// Assembles the full per-node power vector from per-core powers, with
  /// the background scaled to the given core-activity level (1 = peak;
  /// conservative default).
  linalg::Vector full_power(const linalg::Vector& core_watts,
                            double activity = 1.0) const;

  /// Reference (maximum) core frequency [Hz]: the homogeneous model's fmax,
  /// or the fastest class on a heterogeneous platform. Work accounting and
  /// the sigma change of variables are expressed against this reference.
  double fmax() const noexcept {
    return heterogeneous_ ? het_fmax_ : core_power_.fmax();
  }
  /// Reference per-core peak power [W] (the homogeneous model's pmax).
  double core_pmax() const noexcept { return core_power_.pmax(); }

  // ------------------------------------------------- heterogeneity view --

  /// Installs per-core power/thermal classes. `assignment[c]` names the
  /// class of core c; it must cover every core and index into `classes`.
  /// Calling this with one class identical to the reference model keeps
  /// `heterogeneous()` false (the platform stays on the homogeneous fast
  /// paths, bitwise).
  void set_core_classes(std::vector<CoreClass> classes,
                        std::vector<std::size_t> assignment);

  /// Adds a per-node temperature ceiling on the named floorplan block
  /// (e.g. a DRAM strip). Core blocks take their ceiling from CoreClass /
  /// the optimizer tmax instead; naming one here is rejected.
  void add_thermal_ceiling(const std::string& block_name,
                           double tmax_celsius);

  /// True iff distinct per-core classes are installed. All homogeneous
  /// call sites branch on this and keep their historical expressions.
  bool heterogeneous() const noexcept { return heterogeneous_; }

  std::size_t num_core_classes() const noexcept {
    return classes_.empty() ? 1 : classes_.size();
  }
  const std::vector<CoreClass>& core_classes() const noexcept {
    return classes_;
  }
  /// Class index of core c (0 on a homogeneous platform).
  std::size_t class_of(std::size_t core) const {
    return class_of_.empty() ? 0 : class_of_.at(core);
  }
  /// Power model of core c — the reference model unless classes are set.
  const power::DvfsPowerModel& core_power_of(std::size_t core) const {
    return class_of_.empty() ? core_power_
                             : classes_[class_of_[core]].power;
  }
  double core_fmax(std::size_t core) const {
    return core_power_of(core).fmax();
  }
  double core_pmax_of(std::size_t core) const {
    return core_power_of(core).pmax();
  }
  /// Class ceiling of core c (unset = use the optimizer's global tmax).
  std::optional<double> core_tmax(std::size_t core) const {
    return class_of_.empty() ? std::nullopt
                             : classes_[class_of_[core]].tmax_celsius;
  }
  double leakage_scale_of(std::size_t core) const {
    return class_of_.empty() ? 1.0 : classes_[class_of_[core]].leakage_scale;
  }
  /// Sum of per-core peak powers. Homogeneous platforms compute it as
  /// n * pmax — the exact expression (and rounding) the simulator always
  /// used for its activity denominator.
  double total_core_pmax() const noexcept;

  const std::vector<ThermalCeiling>& thermal_ceilings() const noexcept {
    return ceilings_;
  }

 private:
  std::string name_;
  thermal::Floorplan floorplan_;
  thermal::RcNetwork network_;
  power::DvfsPowerModel core_power_;
  std::vector<std::size_t> core_nodes_;
  linalg::Vector background_;
  double background_activity_fraction_;

  std::vector<CoreClass> classes_;       ///< empty on homogeneous platforms
  std::vector<std::size_t> class_of_;    ///< per-core class index, or empty
  std::vector<ThermalCeiling> ceilings_;
  bool heterogeneous_ = false;
  double het_fmax_ = 0.0;                ///< max class fmax, when het
};

}  // namespace protemp::arch
