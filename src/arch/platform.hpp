// Platform description: floorplan + thermal network + power characteristics.
//
// A Platform bundles everything the simulator and the Pro-Temp optimizer
// need to know about one chip: geometry, the assembled RC network, which
// nodes are DFS-controlled cores, and the fixed background power of the
// non-core blocks.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.hpp"
#include "power/power_model.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_network.hpp"

namespace protemp::arch {

class Platform {
 public:
  /// `background_power` must have one entry per network node (block nodes
  /// plus spreader and sink); entries at core nodes are ignored (cores are
  /// DFS-driven). `background_activity_fraction` is the share of the
  /// non-core power that tracks core activity (caches and interconnect
  /// mostly burn power serving the cores); the rest is static. Effective
  /// background at activity level a in [0, 1] is
  ///   bg * ((1 - fraction) + fraction * a).
  Platform(std::string name, thermal::Floorplan floorplan,
           thermal::PackageParams package, power::DvfsPowerModel core_power,
           linalg::Vector background_power,
           double background_activity_fraction = 0.75);

  const std::string& name() const noexcept { return name_; }
  const thermal::Floorplan& floorplan() const noexcept { return floorplan_; }
  const thermal::RcNetwork& network() const noexcept { return network_; }
  const power::DvfsPowerModel& core_power() const noexcept {
    return core_power_;
  }

  std::size_t num_cores() const noexcept { return core_nodes_.size(); }
  std::size_t num_nodes() const noexcept { return network_.num_nodes(); }
  /// Network node indices of the cores, in floorplan insertion order
  /// (core c of the simulator is node core_nodes()[c]).
  const std::vector<std::size_t>& core_nodes() const noexcept {
    return core_nodes_;
  }
  const std::string& core_name(std::size_t core) const {
    return floorplan_.block(core_nodes_.at(core)).name;
  }

  /// Peak per-node background power [W] (core entries zero); equals
  /// background_power_at(1.0).
  const linalg::Vector& background_power() const noexcept {
    return background_;
  }

  /// Background power at a core-activity level in [0, 1] (clamped).
  linalg::Vector background_power_at(double activity) const;

  double background_activity_fraction() const noexcept {
    return background_activity_fraction_;
  }

  /// Assembles the full per-node power vector from per-core powers, with
  /// the background scaled to the given core-activity level (1 = peak;
  /// conservative default).
  linalg::Vector full_power(const linalg::Vector& core_watts,
                            double activity = 1.0) const;

  double fmax() const noexcept { return core_power_.fmax(); }
  double core_pmax() const noexcept { return core_power_.pmax(); }

 private:
  std::string name_;
  thermal::Floorplan floorplan_;
  thermal::RcNetwork network_;
  power::DvfsPowerModel core_power_;
  std::vector<std::size_t> core_nodes_;
  linalg::Vector background_;
  double background_activity_fraction_;
};

}  // namespace protemp::arch
