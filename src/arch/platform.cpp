#include "arch/platform.hpp"

#include <algorithm>
#include <stdexcept>

namespace protemp::arch {

Platform::Platform(std::string name, thermal::Floorplan floorplan,
                   thermal::PackageParams package,
                   power::DvfsPowerModel core_power,
                   linalg::Vector background_power,
                   double background_activity_fraction)
    : name_(std::move(name)),
      floorplan_(std::move(floorplan)),
      network_(floorplan_, package),
      core_power_(core_power),
      background_(std::move(background_power)),
      background_activity_fraction_(background_activity_fraction) {
  if (background_.size() != network_.num_nodes()) {
    throw std::invalid_argument(
        "Platform: background_power must have one entry per network node");
  }
  if (background_activity_fraction_ < 0.0 ||
      background_activity_fraction_ > 1.0) {
    throw std::invalid_argument(
        "Platform: background_activity_fraction must be in [0, 1]");
  }
  core_nodes_ = floorplan_.blocks_of_kind(thermal::BlockKind::kCore);
  if (core_nodes_.empty()) {
    throw std::invalid_argument("Platform: floorplan has no core blocks");
  }
  for (const std::size_t node : core_nodes_) background_[node] = 0.0;
}

linalg::Vector Platform::background_power_at(double activity) const {
  const double a = std::clamp(activity, 0.0, 1.0);
  const double scale = (1.0 - background_activity_fraction_) +
                       background_activity_fraction_ * a;
  return background_ * scale;
}

linalg::Vector Platform::full_power(const linalg::Vector& core_watts,
                                    double activity) const {
  if (core_watts.size() != num_cores()) {
    throw std::invalid_argument("Platform::full_power: core power size mismatch");
  }
  linalg::Vector full = background_power_at(activity);
  for (std::size_t c = 0; c < core_nodes_.size(); ++c) {
    full[core_nodes_[c]] = core_watts[c];
  }
  return full;
}

}  // namespace protemp::arch
