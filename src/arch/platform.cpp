#include "arch/platform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protemp::arch {

Platform::Platform(std::string name, thermal::Floorplan floorplan,
                   thermal::PackageParams package,
                   power::DvfsPowerModel core_power,
                   linalg::Vector background_power,
                   double background_activity_fraction)
    : name_(std::move(name)),
      floorplan_(std::move(floorplan)),
      network_(floorplan_, package),
      core_power_(core_power),
      background_(std::move(background_power)),
      background_activity_fraction_(background_activity_fraction) {
  if (background_.size() != network_.num_nodes()) {
    throw std::invalid_argument(
        "Platform: background_power must have one entry per network node");
  }
  if (background_activity_fraction_ < 0.0 ||
      background_activity_fraction_ > 1.0) {
    throw std::invalid_argument(
        "Platform: background_activity_fraction must be in [0, 1]");
  }
  core_nodes_ = floorplan_.blocks_of_kind(thermal::BlockKind::kCore);
  if (core_nodes_.empty()) {
    throw std::invalid_argument("Platform: floorplan has no core blocks");
  }
  for (const std::size_t node : core_nodes_) background_[node] = 0.0;
}

void Platform::set_core_classes(std::vector<CoreClass> classes,
                                std::vector<std::size_t> assignment) {
  if (classes.empty()) {
    throw std::invalid_argument(
        "Platform::set_core_classes: at least one class required");
  }
  if (assignment.size() != num_cores()) {
    throw std::invalid_argument(
        "Platform::set_core_classes: assignment must name a class for every "
        "core");
  }
  for (const std::size_t idx : assignment) {
    if (idx >= classes.size()) {
      throw std::invalid_argument(
          "Platform::set_core_classes: assignment references class " +
          std::to_string(idx) + " but only " +
          std::to_string(classes.size()) + " classes are defined");
    }
  }
  for (const CoreClass& cls : classes) {
    if (!(cls.leakage_scale >= 0.0) || !std::isfinite(cls.leakage_scale)) {
      throw std::invalid_argument("Platform::set_core_classes: class '" +
                                  cls.name +
                                  "' leakage_scale must be finite and >= 0");
    }
    if (cls.tmax_celsius && !std::isfinite(*cls.tmax_celsius)) {
      throw std::invalid_argument("Platform::set_core_classes: class '" +
                                  cls.name + "' tmax must be finite");
    }
  }

  // A single class that restates the reference model is NOT heterogeneous:
  // the platform keeps every homogeneous fast path (and its bitwise
  // results). Anything else — more classes, a scaled law, a class ceiling,
  // a leakage corner — flips the flag.
  const bool trivially_homogeneous =
      classes.size() == 1 && !classes[0].tmax_celsius &&
      classes[0].leakage_scale == 1.0 &&
      classes[0].power.pmax() == core_power_.pmax() &&
      classes[0].power.fmax() == core_power_.fmax() &&
      classes[0].power.exponent() == core_power_.exponent() &&
      classes[0].power.idle_fraction() == core_power_.idle_fraction();

  classes_ = std::move(classes);
  class_of_ = std::move(assignment);
  heterogeneous_ = !trivially_homogeneous;
  het_fmax_ = 0.0;
  for (const CoreClass& cls : classes_) {
    het_fmax_ = std::max(het_fmax_, cls.power.fmax());
  }
  if (trivially_homogeneous) {
    // Collapse back to the homogeneous representation so core_power_of()
    // returns the reference object itself.
    classes_.clear();
    class_of_.clear();
  }
}

void Platform::add_thermal_ceiling(const std::string& block_name,
                                   double tmax_celsius) {
  if (!std::isfinite(tmax_celsius)) {
    throw std::invalid_argument(
        "Platform::add_thermal_ceiling: tmax must be finite (block '" +
        block_name + "')");
  }
  for (std::size_t i = 0; i < floorplan_.size(); ++i) {
    if (floorplan_.block(i).name != block_name) continue;
    if (floorplan_.block(i).kind == thermal::BlockKind::kCore) {
      throw std::invalid_argument(
          "Platform::add_thermal_ceiling: '" + block_name +
          "' is a core block — core ceilings come from CoreClass / the "
          "optimizer tmax");
    }
    for (const ThermalCeiling& existing : ceilings_) {
      if (existing.node == i) {
        throw std::invalid_argument(
            "Platform::add_thermal_ceiling: duplicate ceiling on block '" +
            block_name + "'");
      }
    }
    ceilings_.push_back(ThermalCeiling{i, tmax_celsius, block_name});
    return;
  }
  throw std::invalid_argument(
      "Platform::add_thermal_ceiling: no floorplan block named '" +
      block_name + "'");
}

double Platform::total_core_pmax() const noexcept {
  if (!heterogeneous_) {
    return static_cast<double>(num_cores()) * core_power_.pmax();
  }
  double total = 0.0;
  for (std::size_t c = 0; c < num_cores(); ++c) {
    total += core_pmax_of(c);
  }
  return total;
}

linalg::Vector Platform::background_power_at(double activity) const {
  if (!std::isfinite(activity)) {
    throw std::invalid_argument(
        "Platform::background_power_at: non-finite activity");
  }
  const double a = std::clamp(activity, 0.0, 1.0);
  const double scale = (1.0 - background_activity_fraction_) +
                       background_activity_fraction_ * a;
  return background_ * scale;
}

linalg::Vector Platform::full_power(const linalg::Vector& core_watts,
                                    double activity) const {
  if (core_watts.size() != num_cores()) {
    throw std::invalid_argument("Platform::full_power: core power size mismatch");
  }
  linalg::Vector full = background_power_at(activity);
  for (std::size_t c = 0; c < core_nodes_.size(); ++c) {
    full[core_nodes_[c]] = core_watts[c];
  }
  return full;
}

}  // namespace protemp::arch
