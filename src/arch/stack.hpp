// Processor-memory stack platform family ("stack:<rows>x<cols>[+<k>dram]").
//
// The TRINITY-style 3D constraint of PAPERS.md, modeled laterally: a mesh
// core grid with its L2 strips plus <k> DRAM strip layers whose silicon
// sits on the same die-level RC network. Vertical stacking is
// approximated 2.5D — the DRAM strips abut the core region, so they heat
// through the same lateral + package paths a stacked layer would through
// its TSV field. What makes the family interesting to the controller is
// not the geometry but the *contract*: each DRAM strip registers a
// per-node thermal ceiling (retention demands DRAM stay well below the
// logic tmax — default 85 degC), which the Phase-1/MPC formulations
// enforce as extra monitored constraint rows (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "arch/platform.hpp"

namespace protemp::arch {

struct StackConfig {
  std::size_t rows = 4;            ///< core-grid rows
  std::size_t cols = 4;            ///< core-grid columns
  std::size_t dram_layers = 1;     ///< DRAM strip count (>= 1)
  double core_edge_mm = 1.5;       ///< square core edge [mm]
  double fmax_hz = 1e9;
  double core_pmax_watts = 0.8;
  double other_power_fraction = 0.25;  ///< L2/interconnect / total core pmax
  double dram_power_fraction = 0.2;    ///< DRAM power / total core pmax
  double dram_tmax_celsius = 85.0;     ///< per-DRAM-node ceiling [degC]
  double background_activity_fraction = 0.75;
  double power_exponent = 2.0;
  double idle_fraction = 0.05;
  double ambient_celsius = 45.0;
};

struct StackDims {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t dram_layers = 1;
};

/// Parses "stack:<rows>x<cols>" (one DRAM layer) or
/// "stack:<rows>x<cols>+<k>dram" with k in [1, 4]; nullopt otherwise.
std::optional<StackDims> parse_stack_dims(std::string_view name) noexcept;

/// Assembles the platform: mesh-style core grid + L2 strips + `dram<i>`
/// strips, with one thermal ceiling per DRAM strip already registered.
Platform make_stack_platform(const StackConfig& config = {});

}  // namespace protemp::arch
