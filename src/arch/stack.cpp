#include "arch/stack.hpp"

#include <stdexcept>
#include <string>

#include "arch/mesh.hpp"
#include "util/units.hpp"

namespace protemp::arch {

using thermal::BlockKind;
using thermal::Floorplan;
using util::mm;

namespace {

/// Niagara die area [m^2]: the package-calibration reference shared with
/// the mesh family (arch/mesh.cpp).
constexpr double kReferenceDieAreaM2 = 12.0e-3 * 10.5e-3;
constexpr std::size_t kMaxDramLayers = 4;

void validate_config(const StackConfig& config) {
  if (config.dram_layers == 0 || config.dram_layers > kMaxDramLayers) {
    throw std::invalid_argument(
        "StackConfig: dram_layers must be in [1, " +
        std::to_string(kMaxDramLayers) + "], got " +
        std::to_string(config.dram_layers));
  }
  if (!(config.dram_power_fraction >= 0.0)) {
    throw std::invalid_argument(
        "StackConfig: dram_power_fraction must be >= 0");
  }
}

MeshConfig mesh_part(const StackConfig& config) {
  MeshConfig mesh;
  mesh.rows = config.rows;
  mesh.cols = config.cols;
  mesh.core_edge_mm = config.core_edge_mm;
  mesh.fmax_hz = config.fmax_hz;
  mesh.core_pmax_watts = config.core_pmax_watts;
  mesh.other_power_fraction = config.other_power_fraction;
  mesh.background_activity_fraction = config.background_activity_fraction;
  mesh.power_exponent = config.power_exponent;
  mesh.idle_fraction = config.idle_fraction;
  mesh.ambient_celsius = config.ambient_celsius;
  return mesh;
}

}  // namespace

std::optional<StackDims> parse_stack_dims(std::string_view name) noexcept {
  if (name.rfind("stack:", 0) != 0) return std::nullopt;
  name.remove_prefix(6);
  StackDims dims;
  const std::size_t plus = name.find('+');
  if (plus != std::string_view::npos) {
    std::string_view suffix = name.substr(plus + 1);
    // "<k>dram", k a single digit in [1, kMaxDramLayers].
    if (suffix.size() != 5 || suffix.substr(1) != "dram" ||
        suffix[0] < '1' ||
        suffix[0] > static_cast<char>('0' + kMaxDramLayers)) {
      return std::nullopt;
    }
    dims.dram_layers = static_cast<std::size_t>(suffix[0] - '0');
    name = name.substr(0, plus);
  }
  const auto grid = parse_mesh_dims(name);
  if (!grid) return std::nullopt;
  dims.rows = grid->first;
  dims.cols = grid->second;
  return dims;
}

Platform make_stack_platform(const StackConfig& config) {
  validate_config(config);
  const MeshConfig mesh = mesh_part(config);

  // Mesh floorplan (l2_s, core grid, l2_n) with the DRAM strips stacked
  // above the north L2 — one full-width strip per layer.
  Floorplan fp = make_mesh_floorplan(mesh);
  const double edge = mm(config.core_edge_mm);
  const double die_w = static_cast<double>(config.cols) * edge;
  const double dram_y0 = (static_cast<double>(config.rows) + 2.0) * edge;
  for (std::size_t layer = 0; layer < config.dram_layers; ++layer) {
    fp.add_block({"dram" + std::to_string(layer), BlockKind::kInterconnect,
                  0.0, dram_y0 + static_cast<double>(layer) * edge, die_w,
                  edge});
  }
  fp.validate_no_overlap();

  // Mesh package calibration, with the cooling scaled to the *full* die
  // (DRAM strips included) so power density stays in the calibrated
  // regime — same principle as make_mesh_package.
  thermal::PackageParams pkg = make_mesh_package(mesh);
  const double mesh_area =
      die_w * (static_cast<double>(config.rows) + 2.0) * edge;
  const double full_area = fp.total_area();
  const double extra_scale = full_area / mesh_area;
  pkg.spreader_capacitance *= extra_scale;
  pkg.spreader_to_sink_resistance /= extra_scale;
  pkg.sink_capacitance *= extra_scale;
  pkg.convection_resistance /= extra_scale;

  const power::DvfsPowerModel core_model(config.core_pmax_watts,
                                         config.fmax_hz,
                                         config.power_exponent,
                                         config.idle_fraction);

  // Background: the mesh share over the L2 strips by area, plus the DRAM
  // budget split evenly across the DRAM strips (refresh + access power is
  // per-device, not per-area).
  const auto cores = fp.blocks_of_kind(BlockKind::kCore);
  const double total_core_pmax =
      config.core_pmax_watts * static_cast<double>(cores.size());
  const double l2_total = config.other_power_fraction * total_core_pmax;
  const double dram_each = config.dram_power_fraction * total_core_pmax /
                           static_cast<double>(config.dram_layers);
  double l2_area = 0.0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    const thermal::Block& block = fp.block(i);
    if (block.kind != BlockKind::kCore &&
        block.name.rfind("dram", 0) != 0) {
      l2_area += block.area();
    }
  }
  linalg::Vector background(fp.size() + 2);  // + spreader + sink
  for (std::size_t i = 0; i < fp.size(); ++i) {
    const thermal::Block& block = fp.block(i);
    if (block.kind == BlockKind::kCore) continue;
    background[i] = block.name.rfind("dram", 0) == 0
                        ? dram_each
                        : l2_total * block.area() / l2_area;
  }

  std::string name = "stack:" + std::to_string(config.rows) + "x" +
                     std::to_string(config.cols);
  if (config.dram_layers != 1) {
    name += "+" + std::to_string(config.dram_layers) + "dram";
  }
  Platform platform(std::move(name), std::move(fp), pkg, core_model,
                    std::move(background),
                    config.background_activity_fraction);
  for (std::size_t layer = 0; layer < config.dram_layers; ++layer) {
    platform.add_thermal_ceiling("dram" + std::to_string(layer),
                                 config.dram_tmax_celsius);
  }
  return platform;
}

}  // namespace protemp::arch
