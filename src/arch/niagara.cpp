#include "arch/niagara.hpp"

#include "util/units.hpp"

namespace protemp::arch {

using thermal::Block;
using thermal::BlockKind;
using thermal::Floorplan;
using util::mm;

Floorplan make_niagara_floorplan() {
  Floorplan fp;
  // Die: 12 mm x 10.5 mm. Horizontal strips (bottom to top):
  //   [0.0, 1.5)   l2buf   (L2 buffer strip)
  //   [1.5, 4.5)   bottom core row: l2_sw | P1 P2 P3 P4 | l2_se
  //   [4.5, 6.0)   xbar    (interconnect / crossbar)
  //   [6.0, 9.0)   top core row:    l2_nw | P5 P6 P7 P8 | l2_ne
  //   [9.0, 10.5)  io_dram (DRAM bridges / IO)
  const double core_w = mm(1.875);
  const double core_h = mm(3.0);
  const double cache_w = mm(2.25);
  const double strip_h = mm(1.5);
  const double die_w = mm(12.0);

  fp.add_block({"l2buf", BlockKind::kCache, 0.0, 0.0, die_w, strip_h});

  const double row0_y = strip_h;
  fp.add_block({"l2_sw", BlockKind::kCache, 0.0, row0_y, cache_w, core_h});
  for (int i = 0; i < 4; ++i) {
    fp.add_block({"P" + std::to_string(i + 1), BlockKind::kCore,
                  cache_w + i * core_w, row0_y, core_w, core_h});
  }
  fp.add_block({"l2_se", BlockKind::kCache, cache_w + 4 * core_w, row0_y,
                cache_w, core_h});

  const double xbar_y = row0_y + core_h;
  fp.add_block(
      {"xbar", BlockKind::kInterconnect, 0.0, xbar_y, die_w, strip_h});

  const double row1_y = xbar_y + strip_h;
  fp.add_block({"l2_nw", BlockKind::kCache, 0.0, row1_y, cache_w, core_h});
  for (int i = 0; i < 4; ++i) {
    fp.add_block({"P" + std::to_string(i + 5), BlockKind::kCore,
                  cache_w + i * core_w, row1_y, core_w, core_h});
  }
  fp.add_block({"l2_ne", BlockKind::kCache, cache_w + 4 * core_w, row1_y,
                cache_w, core_h});

  const double io_y = row1_y + core_h;
  fp.add_block(
      {"io_dram", BlockKind::kInterconnect, 0.0, io_y, die_w, strip_h});

  fp.validate_no_overlap();
  return fp;
}

thermal::PackageParams make_niagara_package(double ambient_celsius) {
  thermal::PackageParams pkg;
  pkg.die_thickness = 0.35e-3;
  pkg.silicon_conductivity = 100.0;
  pkg.silicon_volumetric_heat = 1.75e6;
  pkg.block_capacitance_factor = 1.0;    // bare-silicon block mass:
                                         // core tau ~50 ms, so one core at
                                         // full power sweeps most of its
                                         // local rise inside one DFS window
  pkg.tim_resistance_per_area = 8.0e-5;  // ~14.5 K/W per core: a full-power
                                         // core swings ~55 K above the
                                         // spreader within one window — the
                                         // sawtooth regime of Fig. 1
  pkg.spreader_capacitance = 4.0;
  pkg.spreader_to_sink_resistance = 0.35;
  pkg.sink_capacitance = 24.0;
  pkg.convection_resistance = 0.9;
  pkg.ambient_celsius = ambient_celsius;
  return pkg;
}

Platform make_niagara_platform(const NiagaraConfig& config) {
  Floorplan fp = make_niagara_floorplan();
  const thermal::PackageParams pkg =
      make_niagara_package(config.ambient_celsius);

  const power::DvfsPowerModel core_model(config.core_pmax_watts,
                                         config.fmax_hz,
                                         config.power_exponent,
                                         config.idle_fraction);

  // Background power: other_power_fraction of the total core pmax, spread
  // over the non-core blocks proportionally to area. Spreader/sink nodes
  // (appended after the blocks) get zero.
  const auto cores = fp.blocks_of_kind(BlockKind::kCore);
  const double total_core_pmax =
      config.core_pmax_watts * static_cast<double>(cores.size());
  const double background_total =
      config.other_power_fraction * total_core_pmax;

  double non_core_area = 0.0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (fp.block(i).kind != BlockKind::kCore) {
      non_core_area += fp.block(i).area();
    }
  }

  linalg::Vector background(fp.size() + 2);  // + spreader + sink
  for (std::size_t i = 0; i < fp.size(); ++i) {
    if (fp.block(i).kind != BlockKind::kCore) {
      background[i] = background_total * fp.block(i).area() / non_core_area;
    }
  }

  return Platform("niagara8", std::move(fp), pkg, core_model,
                  std::move(background),
                  config.background_activity_fraction);
}

}  // namespace protemp::arch
