// Task-to-core assignment policies.
//
//   * FirstIdleAssignment  — the paper's default (Sec. 3.1): "when a task
//     arrives, the control unit assigns the task to any idle processor";
//     deterministic lowest-index choice.
//   * CoolestFirstAssignment — temperature-aware assignment in the spirit of
//     Coskun et al. [26] (Sec. 5.4): route to the coolest idle core.
//   * RoundRobinAssignment / RandomAssignment — ablation baselines.
#pragma once

#include <cstdint>

#include "sim/policies.hpp"
#include "util/rng.hpp"

namespace protemp::sim {

class FirstIdleAssignment final : public AssignmentPolicy {
 public:
  std::string name() const override { return "first-idle"; }
  std::size_t pick(const AssignmentContext& ctx) override;
};

class CoolestFirstAssignment final : public AssignmentPolicy {
 public:
  std::string name() const override { return "coolest-first"; }
  std::size_t pick(const AssignmentContext& ctx) override;
};

class RoundRobinAssignment final : public AssignmentPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  void reset() override { next_ = 0; }
  std::size_t pick(const AssignmentContext& ctx) override;
  std::any save_state() const override;
  void load_state(const std::any& state) override;

 private:
  std::size_t next_ = 0;
};

class RandomAssignment final : public AssignmentPolicy {
 public:
  explicit RandomAssignment(std::uint64_t seed = 1234) : rng_(seed), seed_(seed) {}
  std::string name() const override { return "random"; }
  void reset() override { rng_ = util::Rng(seed_); }
  std::size_t pick(const AssignmentContext& ctx) override;
  std::any save_state() const override;
  void load_state(const std::any& state) override;

 private:
  util::Rng rng_;
  std::uint64_t seed_;
};

/// Adaptive-Random in the spirit of Coskun et al. [26]: each core keeps an
/// exponentially weighted moving average of its temperature (its thermal
/// history), and idle cores are chosen randomly with probabilities weighted
/// toward those with the coolest history — so a core that recently ran hot
/// is avoided even after it has transiently cooled.
class AdaptiveRandomAssignment final : public AssignmentPolicy {
 public:
  /// `history_decay` in (0, 1): per-decision EWMA retention (closer to 1 =
  /// longer memory). `sharpness` > 0 controls how strongly cool history is
  /// favoured (weight = (hottest_history - history_i + 1)^sharpness).
  explicit AdaptiveRandomAssignment(std::uint64_t seed = 1234,
                                    double history_decay = 0.98,
                                    double sharpness = 2.0);

  std::string name() const override { return "adaptive-random"; }
  void reset() override;
  std::size_t pick(const AssignmentContext& ctx) override;
  std::any save_state() const override;
  void load_state(const std::any& state) override;

  /// Current thermal-history estimate for a core (for tests/diagnostics);
  /// NaN until the first pick.
  double history(std::size_t core) const;

 private:
  struct Snapshot {
    util::Rng rng;
    std::vector<double> history;
  };

  util::Rng rng_;
  std::uint64_t seed_;
  double decay_;
  double sharpness_;
  std::vector<double> history_;
};

}  // namespace protemp::sim
