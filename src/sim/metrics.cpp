#include "sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace protemp::sim {

Metrics::Metrics(std::size_t num_cores, std::vector<double> band_edges,
                 double tmax)
    : num_cores_(num_cores),
      band_edges_(std::move(band_edges)),
      tmax_(tmax) {
  if (num_cores_ == 0) {
    throw std::invalid_argument("Metrics: need at least one core");
  }
  if (!std::is_sorted(band_edges_.begin(), band_edges_.end()) ||
      std::adjacent_find(band_edges_.begin(), band_edges_.end()) !=
          band_edges_.end()) {
    throw std::invalid_argument("Metrics: band edges must be strictly increasing");
  }
  band_time_.assign(num_cores_ * num_bands(), 0.0);
  violation_time_.assign(num_cores_, 0.0);
  core_max_temp_.assign(num_cores_, -1e300);
}

std::size_t Metrics::band_of(double temp) const noexcept {
  std::size_t band = 0;
  while (band < band_edges_.size() && temp >= band_edges_[band]) ++band;
  return band;
}

void Metrics::record_step(double dt, const linalg::Vector& core_temps,
                          double total_power_watts) {
  if (core_temps.size() != num_cores_) {
    throw std::invalid_argument("Metrics::record_step: temp size mismatch");
  }
  bool any_violation = false;
  double lo = core_temps[0], hi = core_temps[0];
  for (std::size_t c = 0; c < num_cores_; ++c) {
    const double t = core_temps[c];
    band_time_[c * num_bands() + band_of(t)] += dt;
    if (t > tmax_) {
      violation_time_[c] += dt;
      any_violation = true;
    }
    core_max_temp_[c] = std::max(core_max_temp_[c], t);
    max_temp_ = std::max(max_temp_, t);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  if (any_violation) any_violation_time_ += dt;
  const double gradient = hi - lo;
  gradient_integral_ += gradient * dt;
  max_gradient_ = std::max(max_gradient_, gradient);
  energy_ += total_power_watts * dt;
  elapsed_ += dt;
}

void Metrics::record_task_start(double waiting_seconds) {
  ++tasks_started_;
  waiting_sum_ += waiting_seconds;
  max_waiting_ = std::max(max_waiting_, waiting_seconds);
}

void Metrics::record_task_completion(double response_seconds) {
  ++tasks_completed_;
  response_sum_ += response_seconds;
}

std::vector<double> Metrics::band_fractions() const {
  std::vector<double> fractions(num_bands(), 0.0);
  const double total = elapsed_ * static_cast<double>(num_cores_);
  if (total <= 0.0) return fractions;
  for (std::size_t c = 0; c < num_cores_; ++c) {
    for (std::size_t b = 0; b < num_bands(); ++b) {
      fractions[b] += band_time_[c * num_bands() + b];
    }
  }
  for (double& f : fractions) f /= total;
  return fractions;
}

double Metrics::band_fraction(std::size_t core, std::size_t band) const {
  if (core >= num_cores_ || band >= num_bands()) {
    throw std::out_of_range("Metrics::band_fraction: index out of range");
  }
  if (elapsed_ <= 0.0) return 0.0;
  return band_time_[core * num_bands() + band] / elapsed_;
}

double Metrics::violation_fraction() const {
  if (elapsed_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (const double v : violation_time_) acc += v;
  return acc / (elapsed_ * static_cast<double>(num_cores_));
}

double Metrics::any_violation_fraction() const {
  return elapsed_ > 0.0 ? any_violation_time_ / elapsed_ : 0.0;
}

double Metrics::max_temp_seen(std::size_t core) const {
  if (core >= num_cores_) {
    throw std::out_of_range("Metrics::max_temp_seen: core out of range");
  }
  return core_max_temp_[core];
}

double Metrics::mean_spatial_gradient() const {
  return elapsed_ > 0.0 ? gradient_integral_ / elapsed_ : 0.0;
}

double Metrics::mean_waiting_time() const {
  return tasks_started_ > 0
             ? waiting_sum_ / static_cast<double>(tasks_started_)
             : 0.0;
}

double Metrics::mean_response_time() const {
  return tasks_completed_ > 0
             ? response_sum_ / static_cast<double>(tasks_completed_)
             : 0.0;
}

}  // namespace protemp::sim
