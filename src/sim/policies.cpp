#include "sim/policies.hpp"

#include <algorithm>

namespace protemp::sim {

double required_average_frequency(const ControllerView& view) {
  if (view.num_cores == 0 || view.dfs_period <= 0.0 || view.fmax <= 0.0) {
    return 0.0;
  }
  // Work [s at fmax] we would like to complete in the next window: what is
  // pending now plus a persistence forecast of arrivals.
  const double target_work = view.backlog_work + view.arrived_work_last_window;
  const double capacity_at_fmax =
      static_cast<double>(view.num_cores) * view.dfs_period;
  const double fraction = target_work / capacity_at_fmax;
  return std::clamp(fraction, 0.0, 1.0) * view.fmax;
}

}  // namespace protemp::sim
