#include "sim/control_loop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protemp::sim {

ControlLoop::ControlLoop(DfsPolicy& dfs, AssignmentPolicy& assignment,
                         Config config)
    : dfs_(&dfs), assignment_(&assignment), config_(config) {
  if (!(config_.dt > 0.0) || !(config_.dfs_period > 0.0)) {
    throw std::invalid_argument(
        "ControlLoop: dt and dfs_period must be positive");
  }
  if (config_.dfs_period < config_.dt) {
    throw std::invalid_argument("ControlLoop: dfs_period must be >= dt");
  }
  if (config_.frequency_quantum < 0.0) {
    throw std::invalid_argument("ControlLoop: frequency_quantum must be >= 0");
  }
  if (!std::isfinite(config_.fmin) || config_.fmin < 0.0) {
    throw std::invalid_argument("ControlLoop: fmin must be finite and >= 0");
  }
  if (config_.fmin > config_.fmax) {
    throw std::invalid_argument("ControlLoop: fmin must be <= fmax");
  }
  if (config_.num_cores == 0) {
    throw std::invalid_argument("ControlLoop: num_cores must be > 0");
  }
  // A fractional window/step ratio would be silently rounded here, and the
  // actuation cadence would drift against wall time (0.25 s windows over
  // 0.1 s steps actuate every 0.2-0.3 s instead). Reject anything further
  // than 1e-9 from an integer; honest fp error in dfs_period / dt is
  // orders of magnitude below that.
  const double ratio = config_.dfs_period / config_.dt;
  if (std::abs(ratio - std::llround(ratio)) > 1e-9) {
    throw std::invalid_argument(
        "ControlLoop: dfs_period must be an integer multiple of dt (ratio " +
        std::to_string(ratio) + ")");
  }
  steps_per_window_ = static_cast<std::size_t>(std::llround(ratio));
  if (steps_per_window_ == 0) {
    throw std::invalid_argument("ControlLoop: dfs_period shorter than dt");
  }
  if (!config_.core_fmax.empty()) {
    if (config_.core_fmax.size() != config_.num_cores) {
      throw std::invalid_argument(
          "ControlLoop: core_fmax must have one entry per core");
    }
    for (const double f : config_.core_fmax) {
      if (!std::isfinite(f) || !(f > 0.0) || f > config_.fmax) {
        throw std::invalid_argument(
            "ControlLoop: core_fmax entries must be finite, positive and "
            "<= fmax");
      }
    }
  }
  frequencies_ = linalg::Vector(config_.num_cores);
}

void ControlLoop::reset() {
  dfs_->reset();
  assignment_->reset();
  step_ = 0;
  windows_ = 0;
  frequencies_ = linalg::Vector(config_.num_cores);
  window_boundary_ = false;
  intervened_ = false;
}

double ControlLoop::quantize(double f, std::size_t core) const noexcept {
  const double q = config_.frequency_quantum;
  const double floored = q <= 0.0 ? f : std::floor(f / q) * q;
  // The fmin rail is applied after flooring: a request in (0, quantum)
  // floors to 0 and then lands on the rail, never on a phantom 0 Hz state
  // the platform does not have. Heterogeneous platforms cap each core at
  // its class fmax instead of the shared reference.
  const double cap = config_.core_fmax.empty() ? config_.fmax
                                               : config_.core_fmax[core];
  return std::clamp(floored, config_.fmin, cap);
}

const linalg::Vector& ControlLoop::on_telemetry(const TelemetryFrame& frame) {
  // DFS boundary: ask the policy for the next window's frequencies.
  if (step_ % steps_per_window_ == 0) {
    ControllerView view;
    view.time = frame.time;
    view.dfs_period = config_.dfs_period;
    view.core_temps = frame.core_temps;
    view.sensor_temps =
        frame.sensor_temps.empty() ? frame.core_temps : frame.sensor_temps;
    view.queue_length = frame.queue_length;
    view.num_cores = config_.num_cores;
    view.fmax = config_.fmax;
    if (!config_.core_fmax.empty()) {
      view.core_fmax = linalg::Vector(config_.num_cores);
      for (std::size_t c = 0; c < config_.num_cores; ++c) {
        view.core_fmax[c] = config_.core_fmax[c];
      }
    }
    view.backlog_work = frame.backlog_work;
    view.arrived_work_last_window = frame.arrived_work_last_window;
    linalg::Vector next = dfs_->on_window(view);
    if (next.size() != config_.num_cores) {
      // Validate before touching frequencies_: a rejected frame must leave
      // the in-force vector (and any checkpoint of it) intact.
      throw std::logic_error("DfsPolicy returned wrong frequency count");
    }
    for (std::size_t c = 0; c < config_.num_cores; ++c) {
      next[c] = quantize(next[c], c);
    }
    frequencies_ = std::move(next);
    ++windows_;
    window_boundary_ = true;
  } else {
    window_boundary_ = false;
  }

  // Sensor-granularity policy hook (e.g. continuous thermal trip).
  intervened_ = dfs_->on_sample(frame.time, frame.core_temps, frequencies_);
  if (intervened_) {
    for (std::size_t c = 0; c < config_.num_cores; ++c) {
      frequencies_[c] = quantize(frequencies_[c], c);
    }
  }

  ++step_;
  return frequencies_;
}

std::size_t ControlLoop::pick_core(const AssignmentContext& ctx) {
  const std::size_t chosen = assignment_->pick(ctx);
  // Equivalent to the simulator's historical non-idle check: the idle list
  // is exactly the set of legal answers.
  if (std::find(ctx.idle_cores.begin(), ctx.idle_cores.end(), chosen) ==
      ctx.idle_cores.end()) {
    throw std::logic_error("AssignmentPolicy picked a non-idle core");
  }
  return chosen;
}

ControlLoop::Checkpoint ControlLoop::checkpoint() const {
  Checkpoint out;
  out.step = step_;
  out.windows = windows_;
  out.frequencies = frequencies_;
  out.window_boundary = window_boundary_;
  out.intervened = intervened_;
  out.dfs_state = dfs_->save_state();
  out.assignment_state = assignment_->save_state();
  return out;
}

void ControlLoop::restore(const Checkpoint& checkpoint) {
  if (checkpoint.frequencies.size() != config_.num_cores) {
    throw std::invalid_argument(
        "ControlLoop::restore: checkpoint core count does not match");
  }
  // Policies first: their load_state throws on a type mismatch, and the
  // loop's own state must not be half-updated in that case. If the second
  // load fails the first is rolled back, so a failed restore never leaves
  // one policy carrying the foreign snapshot's state.
  const std::any dfs_backup = dfs_->save_state();
  dfs_->load_state(checkpoint.dfs_state);
  try {
    assignment_->load_state(checkpoint.assignment_state);
  } catch (...) {
    dfs_->load_state(dfs_backup);
    throw;
  }
  step_ = checkpoint.step;
  windows_ = checkpoint.windows;
  frequencies_ = checkpoint.frequencies;
  window_boundary_ = checkpoint.window_boundary;
  intervened_ = checkpoint.intervened;
}

}  // namespace protemp::sim
