#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace protemp::sim {
namespace {

constexpr const char* kModule = "sim";

struct CoreState {
  std::optional<workload::Task> task;
  double remaining = 0.0;   ///< work left [s at fmax]
  double task_start = 0.0;  ///< time execution began (for response time)
  double frequency = 0.0;   ///< [Hz]
};

}  // namespace

MulticoreSimulator::MulticoreSimulator(const arch::Platform& platform,
                                       SimConfig config)
    : platform_(platform),
      config_(std::move(config)),
      model_(platform.network(), config_.dt, config_.thermal_backend) {
  if (!(config_.dt > 0.0) || !(config_.dfs_period > 0.0)) {
    throw std::invalid_argument("SimConfig: dt and dfs_period must be positive");
  }
  if (config_.dfs_period < config_.dt) {
    throw std::invalid_argument("SimConfig: dfs_period must be >= dt");
  }
  // Mirrors ControlLoop: a fractional window/step ratio silently rounds
  // and the actuation cadence drifts against wall time.
  const double ratio = config_.dfs_period / config_.dt;
  if (std::abs(ratio - std::llround(ratio)) > 1e-9) {
    throw std::invalid_argument(
        "SimConfig: dfs_period must be an integer multiple of dt (ratio " +
        std::to_string(ratio) + ")");
  }
  if (config_.frequency_quantum < 0.0) {
    throw std::invalid_argument("SimConfig: frequency_quantum must be >= 0");
  }
  if (!std::isfinite(config_.fmin) || config_.fmin < 0.0) {
    throw std::invalid_argument("SimConfig: fmin must be finite and >= 0");
  }
  // The recorded trace's nominal period must be realizable as a whole
  // number of steps, or the effective cadence silently differs from the
  // configured one (the ratio-0.5 floor catches ratios that would round
  // all the way to zero).
  if (config_.trace_sample_period > 0.0) {
    const double trace_ratio = config_.trace_sample_period / config_.dt;
    if (std::abs(trace_ratio - std::llround(trace_ratio)) > 1e-9 ||
        trace_ratio < 0.5) {
      throw std::invalid_argument(
          "SimConfig: trace_sample_period must be an integer multiple of dt "
          "(ratio " + std::to_string(trace_ratio) + ")");
    }
  }
}

SimResult MulticoreSimulator::run(const workload::TaskTrace& trace,
                                  DfsPolicy& dfs,
                                  AssignmentPolicy& assignment,
                                  double duration) {
  ControlLoop::Config loop_config;
  loop_config.dt = config_.dt;
  loop_config.dfs_period = config_.dfs_period;
  loop_config.frequency_quantum = config_.frequency_quantum;
  loop_config.fmin = config_.fmin;
  loop_config.fmax = platform_.fmax();
  loop_config.num_cores = platform_.num_cores();
  if (platform_.heterogeneous()) {
    loop_config.core_fmax.resize(platform_.num_cores());
    for (std::size_t c = 0; c < platform_.num_cores(); ++c) {
      loop_config.core_fmax[c] = platform_.core_fmax(c);
    }
  }
  ControlLoop loop(dfs, assignment, loop_config);
  return run(trace, loop, duration);
}

SimResult MulticoreSimulator::run(const workload::TaskTrace& trace,
                                  Controller& controller, double duration) {
  if (!(duration > 0.0)) {
    throw std::invalid_argument("MulticoreSimulator::run: duration must be > 0");
  }
  const std::size_t n_cores = platform_.num_cores();
  const std::size_t n_nodes = platform_.num_nodes();
  const double fmax = platform_.fmax();
  const auto& core_nodes = platform_.core_nodes();
  const power::DvfsPowerModel& pm = platform_.core_power();
  // Heterogeneous branch flag: homogeneous platforms keep the shared `pm`
  // expressions (and their bitwise results) untouched.
  const bool het = platform_.heterogeneous();

  controller.reset();

  // Initial thermal state (temps_next double-buffers the thermal step).
  linalg::Vector temps(n_nodes);
  linalg::Vector temps_next(n_nodes);
  if (config_.initial_temperature) {
    temps = linalg::Vector(n_nodes, *config_.initial_temperature);
  } else {
    // Idle chip: cores off, background at its static (zero-activity) level.
    temps = model_.steady_state(platform_.background_power_at(0.0));
  }

  std::vector<CoreState> cores(n_cores);
  std::deque<workload::Task> queue;

  SimResult result{Metrics(n_cores, config_.band_edges, config_.tmax),
                   {}, 0, 0, 0, 0, 0.0, 0.0};

  const std::size_t steps_per_window = static_cast<std::size_t>(
      std::llround(config_.dfs_period / config_.dt));
  if (steps_per_window == 0) {
    throw std::invalid_argument("SimConfig: dfs_period shorter than dt");
  }
  const std::size_t total_steps =
      static_cast<std::size_t>(std::ceil(duration / config_.dt));

  const std::size_t trace_stride =
      config_.trace_sample_period > 0.0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::llround(config_.trace_sample_period / config_.dt)))
          : 0;

  std::size_t next_arrival = 0;
  double arrived_work_window = 0.0;
  double arrived_work_prev_window = 0.0;
  double freq_integral = 0.0;

  const auto core_temps_of = [&](const linalg::Vector& node_temps) {
    linalg::Vector out(n_cores);
    for (std::size_t c = 0; c < n_cores; ++c) {
      out[c] = node_temps[core_nodes[c]];
    }
    return out;
  };

  // Sensor model: the controller sees true temperatures plus optional
  // Gaussian noise; the metrics always see the truth.
  util::Rng sensor_rng(config_.sensor_noise_seed);
  const auto sense = [&](const linalg::Vector& truth) {
    if (config_.sensor_noise_stddev <= 0.0) return truth;
    linalg::Vector noisy = truth;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      noisy[i] += sensor_rng.normal(0.0, config_.sensor_noise_stddev);
    }
    return noisy;
  };

  const auto assign_from_queue = [&](double now,
                                     const linalg::Vector& core_temps) {
    for (;;) {
      if (queue.empty()) return;
      AssignmentContext ctx;
      ctx.time = now;
      ctx.core_temps = core_temps;
      for (std::size_t c = 0; c < n_cores; ++c) {
        if (!cores[c].task) ctx.idle_cores.push_back(c);
      }
      if (ctx.idle_cores.empty()) return;
      const std::size_t chosen = controller.pick_core(ctx);
      workload::Task task = queue.front();
      queue.pop_front();
      result.metrics.record_task_start(now - task.arrival_time);
      cores[chosen].task = task;
      cores[chosen].remaining = task.work;
      cores[chosen].task_start = now;
    }
  };

  TelemetryFrame frame;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double now = static_cast<double>(step) * config_.dt;
    const linalg::Vector true_core_temps = core_temps_of(temps);
    frame = TelemetryFrame{};
    frame.time = now;
    frame.core_temps = sense(true_core_temps);

    // 1. Admit arrivals up to `now`.
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_time <= now) {
      queue.push_back(trace[next_arrival]);
      arrived_work_window += trace[next_arrival].work;
      ++result.tasks_admitted;
      ++next_arrival;
    }

    // 2. Assign queued tasks to idle cores (controller decides placement).
    assign_from_queue(now, frame.core_temps);

    // 3. Fill the window-boundary telemetry (workload accounting and block
    //    sensors are only read by the controller at DFS boundaries).
    if (step % steps_per_window == 0) {
      frame.queue_length = queue.size();
      double backlog = 0.0;
      for (const auto& t : queue) backlog += t.work;
      for (const auto& c : cores) backlog += c.remaining;
      frame.backlog_work = backlog;
      frame.arrived_work_last_window =
          (step == 0) ? arrived_work_window : arrived_work_prev_window;
      linalg::Vector block_temps(platform_.floorplan().size());
      for (std::size_t b = 0; b < platform_.floorplan().size(); ++b) {
        block_temps[b] = temps[b];
      }
      frame.sensor_temps = sense(block_temps);
      arrived_work_prev_window = arrived_work_window;
      arrived_work_window = 0.0;
    }

    // 4. Hand the frame to the controller: window decision (at boundaries)
    //    plus the sensor-granularity hook, quantized — see ControlLoop.
    const linalg::Vector& frequencies = controller.on_telemetry(frame);
    if (frequencies.size() != n_cores) {
      throw std::logic_error("Controller returned wrong frequency count");
    }

    // 5. Execute this step; cores that finish pull the next queued task
    //    immediately (FCFS) with exact sub-step time accounting.
    linalg::Vector core_watts(n_cores);
    for (std::size_t c = 0; c < n_cores; ++c) {
      CoreState& core = cores[c];
      core.frequency = frequencies[c];
      const double speed = core.frequency / fmax;  // work-seconds per second
      double time_left = config_.dt;
      double busy_time = 0.0;
      while (speed > 0.0 && time_left > 1e-15) {
        if (!core.task) {
          if (queue.empty()) break;
          workload::Task task = queue.front();
          queue.pop_front();
          const double start_time = now + (config_.dt - time_left);
          result.metrics.record_task_start(start_time - task.arrival_time);
          core.task = task;
          core.remaining = task.work;
          core.task_start = start_time;
        }
        const double capacity = time_left * speed;
        if (core.remaining <= capacity) {
          const double used_time = core.remaining / speed;
          busy_time += used_time;
          time_left -= used_time;
          const double finish_time = now + (config_.dt - time_left);
          result.metrics.record_task_completion(finish_time -
                                                core.task->arrival_time);
          ++result.tasks_completed;
          core.task.reset();
          core.remaining = 0.0;
        } else {
          core.remaining -= capacity;
          busy_time += time_left;
          time_left = 0.0;
        }
      }
      const double busy_fraction = busy_time / config_.dt;
      const power::DvfsPowerModel& cpm =
          het ? platform_.core_power_of(c) : pm;
      core_watts[c] = cpm.power(core.frequency, true) * busy_fraction +
                      cpm.power(core.frequency, false) * (1.0 - busy_fraction);
      if (config_.core_leakage) {
        // Leakage follows the physical temperature, not the sensor reading;
        // heterogeneous classes scale it by their process-corner factor.
        const double leak = config_.core_leakage->power(true_core_temps[c]);
        core_watts[c] += het ? leak * platform_.leakage_scale_of(c) : leak;
      }
      freq_integral += core.frequency * config_.dt;
    }

    // 6. Thermal step. The cache/interconnect background scales with the
    //    chip's dynamic activity (fraction of peak dynamic power), which is
    //    never above the worst-case activity the Phase-1 optimizer assumed.
    double activity = 0.0;
    for (std::size_t c = 0; c < n_cores; ++c) {
      activity += (het ? platform_.core_power_of(c) : pm)
                      .power(frequencies[c], true);
    }
    activity /= het ? platform_.total_core_pmax()
                    : static_cast<double>(n_cores) * pm.pmax();
    const linalg::Vector full_power =
        platform_.full_power(core_watts, activity);
    double total_power = 0.0;
    for (std::size_t i = 0; i < full_power.size(); ++i) {
      total_power += full_power[i];
    }
    model_.step_into(temps, full_power, temps_next);
    std::swap(temps, temps_next);

    // 7. Metrics and optional trace (post-step temperatures).
    const linalg::Vector post_temps = core_temps_of(temps);
    result.metrics.record_step(config_.dt, post_temps, total_power);
    if (trace_stride > 0 && step % trace_stride == 0) {
      result.temperature_trace.push_back(
          TraceSample{now + config_.dt, post_temps});
    }
  }

  result.sim_time = static_cast<double>(total_steps) * config_.dt;
  result.tasks_left_queued = queue.size();
  for (const auto& c : cores) {
    if (c.task) ++result.tasks_in_flight;
  }
  result.mean_frequency =
      freq_integral / (result.sim_time * static_cast<double>(n_cores));

  PROTEMP_LOG_DEBUG(kModule,
                    "run done: %.1fs, admitted=%zu completed=%zu queued=%zu",
                    result.sim_time, result.tasks_admitted,
                    result.tasks_completed, result.tasks_left_queued);
  return result;
}

}  // namespace protemp::sim
