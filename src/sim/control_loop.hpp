// The control side of the thermal-management loop, extracted from the
// simulator so that *who owns the loop* is a choice, not an architecture.
//
// A Controller consumes one TelemetryFrame per sensor sample (the paper's
// 0.4 ms cadence) and keeps the per-core frequency vector that is in force
// for the step beginning at that frame; it also answers task-to-core
// assignment queries. MulticoreSimulator drives a Controller in closed loop
// (simulated telemetry in, simulated plant response out); the api layer's
// ControlSession exposes the same object to external telemetry sources
// (open loop) with a Status-based interface on top.
//
// ControlLoop is the concrete controller the paper describes: a DfsPolicy
// queried at every DFS-window boundary plus its optional sample-granularity
// intervention hook, with frequency quantization applied to every output,
// and an AssignmentPolicy answering placement queries. It owns nothing but
// cadence state — policies are borrowed, so the same policy instances can
// be inspected (stats, tables) after a run, exactly as before the
// extraction.
#pragma once

#include <any>
#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"
#include "sim/policies.hpp"

namespace protemp::sim {

/// One telemetry frame, delivered once per sensor sample. The workload
/// fields (`queue_length`, `backlog_work`, `arrived_work_last_window`) and
/// `sensor_temps` are only read at DFS-window boundaries; drivers may leave
/// them empty/zero on other frames (the simulator does, and
/// ControlSession::next_step_is_window_boundary() tells external drivers
/// when a full frame is needed).
struct TelemetryFrame {
  double time = 0.0;           ///< [s]
  linalg::Vector core_temps;   ///< per-core sensor readings [degC]
  /// Per-block sensor readings (cores, caches, interconnect) in floorplan
  /// order. May be left empty: the controller then treats the core
  /// readings as the only measured blocks (safe — unmeasured nodes are
  /// filled conservatively by the policies, see OnlineProTempPolicy).
  linalg::Vector sensor_temps;
  std::size_t queue_length = 0;
  double backlog_work = 0.0;   ///< queued + in-flight work [s at fmax]
  double arrived_work_last_window = 0.0;  ///< [s at fmax]
};

/// Telemetry-in / actuation-out interface of the thermal management unit.
/// Implementations keep internal cadence state: on_telemetry must be called
/// exactly once per sensor sample, in time order.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Resets all loop and policy state for a fresh run.
  virtual void reset() = 0;

  /// Consumes one telemetry frame and returns the per-core frequency
  /// vector [Hz] in force for the step that begins at `frame.time`. The
  /// reference stays valid until the next on_telemetry/reset call.
  virtual const linalg::Vector& on_telemetry(const TelemetryFrame& frame) = 0;

  /// Picks one of ctx.idle_cores for the task at the head of the queue.
  virtual std::size_t pick_core(const AssignmentContext& ctx) = 0;
};

/// The paper's thermal management unit as a stepwise controller.
class ControlLoop final : public Controller {
 public:
  struct Config {
    double dt = 0.4e-3;        ///< telemetry cadence [s]
    /// DFS window [s]; must be >= dt and an integer multiple of it (within
    /// 1e-9): a fractional ratio would silently round, drifting the
    /// actuation cadence against wall time.
    double dfs_period = 0.1;
    /// Frequency quantum [Hz]; outputs are floored to a multiple of it
    /// (0 = continuous), mirroring SimConfig::frequency_quantum.
    double frequency_quantum = 0.0;
    /// Lower frequency rail [Hz]; every output is clamped to
    /// [fmin, fmax]. The rail wins over the quantum — a request inside
    /// (0, quantum) must not floor to a 0 Hz stall when the platform has a
    /// real minimum DVS state. Default 0 preserves historical behavior
    /// (quantization may shut a core down); with fmin > 0, thermal trips
    /// idle at the rail instead of power-gating.
    double fmin = 0.0;
    double fmax = 0.0;         ///< reference (maximum) frequency [Hz]
    std::size_t num_cores = 0;
    /// Per-core frequency caps [Hz] for heterogeneous platforms. Empty =
    /// every core capped at fmax (the historical homogeneous behavior).
    /// When set: exactly num_cores finite entries, each in (0, fmax].
    std::vector<double> core_fmax;
  };

  /// Borrows both policies; the caller keeps them alive and unshared for
  /// the loop's lifetime. Throws std::invalid_argument on a bad config.
  ControlLoop(DfsPolicy& dfs, AssignmentPolicy& assignment, Config config);

  void reset() override;
  const linalg::Vector& on_telemetry(const TelemetryFrame& frame) override;
  std::size_t pick_core(const AssignmentContext& ctx) override;

  const Config& config() const noexcept { return config_; }
  std::size_t steps_per_window() const noexcept { return steps_per_window_; }

  /// Frames consumed since the last reset/restore.
  std::size_t steps() const noexcept { return step_; }
  /// DFS-window decisions taken since the last reset/restore.
  std::size_t windows() const noexcept { return windows_; }
  /// Whether the *next* on_telemetry call falls on a DFS-window boundary
  /// (and therefore reads the frame's workload and block-sensor fields).
  bool next_step_is_window_boundary() const noexcept {
    return step_ % steps_per_window_ == 0;
  }
  /// Whether the last consumed frame was a window boundary / triggered a
  /// sample-granularity intervention (thermal trip).
  bool last_step_was_window() const noexcept { return window_boundary_; }
  bool last_step_intervened() const noexcept { return intervened_; }

  /// The frequency vector currently in force (zeros before the first frame).
  const linalg::Vector& frequencies() const noexcept { return frequencies_; }

  /// Complete checkpoint of the loop *and* its borrowed policies. A
  /// checkpoint may only be restored into a loop over the same policy
  /// instances (or same-typed, same-configured ones); restore throws
  /// std::invalid_argument on a shape or type mismatch. Restoring and
  /// replaying the same telemetry reproduces the original outputs exactly,
  /// including warm-start behavior (policy state covers the solver
  /// workspace).
  struct Checkpoint {
    std::size_t step = 0;
    std::size_t windows = 0;
    linalg::Vector frequencies;
    bool window_boundary = false;
    bool intervened = false;
    std::any dfs_state;
    std::any assignment_state;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& checkpoint);

 private:
  double quantize(double f, std::size_t core) const noexcept;

  DfsPolicy* dfs_;
  AssignmentPolicy* assignment_;
  Config config_;
  std::size_t steps_per_window_ = 0;

  std::size_t step_ = 0;
  std::size_t windows_ = 0;
  linalg::Vector frequencies_;
  bool window_boundary_ = false;
  bool intervened_ = false;
};

}  // namespace protemp::sim
