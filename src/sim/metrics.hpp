// Simulation metrics: everything the paper's evaluation section reports.
//
//   * temperature-band residency per core (Fig. 6's <80 / 80-90 / 90-100 /
//     >100 bars),
//   * time above Tmax (violation fraction, Fig. 11),
//   * task waiting/response times (Fig. 7),
//   * spatial gradient across cores (Sec. 5.4's 16 % reduction claim),
//   * energy, throughput, per-core peaks.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"

namespace protemp::sim {

class Metrics {
 public:
  /// `band_edges` must be strictly increasing; bands are
  /// (-inf, e0), [e0, e1), ..., [e_last, +inf) — one more band than edges.
  Metrics(std::size_t num_cores, std::vector<double> band_edges, double tmax);

  // -- recording (called by the simulator) -------------------------------
  void record_step(double dt, const linalg::Vector& core_temps,
                   double total_power_watts);
  void record_task_start(double waiting_seconds);
  void record_task_completion(double response_seconds);

  // -- results ------------------------------------------------------------
  std::size_t num_bands() const noexcept { return band_edges_.size() + 1; }
  const std::vector<double>& band_edges() const noexcept { return band_edges_; }

  /// Fraction of (core x time) spent in each band; sums to 1.
  std::vector<double> band_fractions() const;
  /// Per-core fraction of time in band b.
  double band_fraction(std::size_t core, std::size_t band) const;

  /// Fraction of (core x time) above tmax.
  double violation_fraction() const;
  /// Fraction of time during which at least one core exceeds tmax.
  double any_violation_fraction() const;

  double max_temp_seen() const noexcept { return max_temp_; }
  double max_temp_seen(std::size_t core) const;

  /// Time-average and maximum of (max_i T_i - min_i T_i) across cores.
  double mean_spatial_gradient() const;
  double max_spatial_gradient() const noexcept { return max_gradient_; }

  std::size_t tasks_started() const noexcept { return tasks_started_; }
  std::size_t tasks_completed() const noexcept { return tasks_completed_; }
  double mean_waiting_time() const;
  double max_waiting_time() const noexcept { return max_waiting_; }
  double mean_response_time() const;

  double total_energy_joules() const noexcept { return energy_; }
  double elapsed() const noexcept { return elapsed_; }

 private:
  std::size_t band_of(double temp) const noexcept;

  std::size_t num_cores_;
  std::vector<double> band_edges_;
  double tmax_;

  std::vector<double> band_time_;  // [core * num_bands + band]
  std::vector<double> violation_time_;  // per core
  std::vector<double> core_max_temp_;   // per core
  double any_violation_time_ = 0.0;
  double elapsed_ = 0.0;
  double max_temp_ = -1e300;
  double gradient_integral_ = 0.0;
  double max_gradient_ = 0.0;
  double energy_ = 0.0;

  std::size_t tasks_started_ = 0;
  std::size_t tasks_completed_ = 0;
  double waiting_sum_ = 0.0;
  double max_waiting_ = 0.0;
  double response_sum_ = 0.0;
};

}  // namespace protemp::sim
