// Policy interfaces of the thermal management unit.
//
// The simulator is policy-agnostic: a DfsPolicy decides per-core frequencies
// at every DFS window boundary (and may optionally intervene at sensor
// sampling granularity), and an AssignmentPolicy routes queued tasks to idle
// cores. The paper's Pro-Temp, Basic-DFS and No-TC methods are DfsPolicy
// implementations (src/core/); FirstIdle/CoolestFirst/etc. are
// AssignmentPolicy implementations (src/sim/assignment.hpp).
#pragma once

#include <any>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/vector.hpp"

namespace protemp::convex {
class SolverWorkspace;
}  // namespace protemp::convex

namespace protemp::sim {

/// Snapshot handed to a DfsPolicy at a window boundary.
struct ControllerView {
  double time = 0.0;           ///< [s]
  double dfs_period = 0.1;     ///< [s]
  linalg::Vector core_temps;   ///< per-core sensor readings [degC]
  /// Sensor readings of every floorplan block (cores, caches,
  /// interconnect). Pro-Temp keys its table on the max over all sensors,
  /// which makes the worst-case-start assumption of Phase 1 a true upper
  /// bound (see DESIGN.md).
  linalg::Vector sensor_temps;
  double backlog_work = 0.0;   ///< queued + in-flight work [s at fmax]
  double arrived_work_last_window = 0.0;  ///< [s at fmax]
  std::size_t queue_length = 0;
  std::size_t num_cores = 0;
  double fmax = 0.0;           ///< reference (maximum) frequency [Hz]
  /// Per-core frequency caps [Hz] on heterogeneous platforms; empty on
  /// homogeneous ones (every core tops out at `fmax`).
  linalg::Vector core_fmax;

  /// Cap of core c: its class fmax, or the shared reference fmax.
  double fmax_of(std::size_t core) const {
    return core_fmax.empty() ? fmax : core_fmax[core];
  }

  double max_core_temp() const { return core_temps.max(); }
  double max_sensor_temp() const {
    return sensor_temps.empty() ? core_temps.max() : sensor_temps.max();
  }
};

/// The average frequency the cores need over the next window to clear the
/// backlog plus a persistence forecast of new arrivals (Sec. 3.3: "the unit
/// also monitors the workload of the tasks waiting in the task queue ...
/// the required average operating frequency ... is calculated").
double required_average_frequency(const ControllerView& view);

class DfsPolicy {
 public:
  virtual ~DfsPolicy() = default;

  virtual std::string name() const = 0;

  /// Resets internal state before a simulation run.
  virtual void reset() {}

  /// Called at every DFS boundary (including t = 0); returns the per-core
  /// frequency vector [Hz] for the next window.
  virtual linalg::Vector on_window(const ControllerView& view) = 0;

  /// Called every simulation step with fresh sensor values. May modify
  /// `frequencies` in place (e.g. a continuous thermal trip); returns true
  /// if it did. Default: no intervention.
  virtual bool on_sample(double time, const linalg::Vector& core_temps,
                         linalg::Vector& frequencies) {
    (void)time;
    (void)core_temps;
    (void)frequencies;
    return false;
  }

  /// Opaque checkpoint of the policy's mutable state, for session
  /// snapshot/restore (restoring and replaying the same inputs must
  /// reproduce the original outputs exactly — including warm-start
  /// behavior, so stateful policies cover their solver workspaces).
  /// Stateless policies use these defaults. load_state must only receive a
  /// value produced by save_state on the same policy type; implementations
  /// throw std::invalid_argument on a foreign value.
  virtual std::any save_state() const { return {}; }
  virtual void load_state(const std::any& state) { (void)state; }

  /// The policy's convex-solver workspace, when it owns one (the online
  /// MPC policies); nullptr for table-driven and reactive policies.
  /// Sessions surface solver statistics — warm starts, Newton steps,
  /// fixed-budget expiries — through this without knowing the concrete
  /// policy type.
  virtual const convex::SolverWorkspace* solver_workspace() const {
    return nullptr;
  }
};

/// Context for one task-to-core assignment decision.
struct AssignmentContext {
  double time = 0.0;
  std::vector<std::size_t> idle_cores;  ///< candidate cores (non-empty)
  linalg::Vector core_temps;            ///< all cores [degC]
};

/// any_cast with a policy-anchored diagnostic, for load_state
/// implementations: rejects a foreign state value with the
/// std::invalid_argument the save_state/load_state contract requires.
template <typename T>
const T& policy_state_as(const std::any& state, const char* who) {
  const T* value = std::any_cast<T>(&state);
  if (value == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                ": state was not produced by this policy");
  }
  return *value;
}

class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;
  virtual std::string name() const = 0;
  virtual void reset() {}
  /// Picks one of ctx.idle_cores for the task at the head of the queue.
  virtual std::size_t pick(const AssignmentContext& ctx) = 0;

  /// Checkpoint hooks with the same contract as DfsPolicy::save_state /
  /// load_state; stateless policies use these defaults.
  virtual std::any save_state() const { return {}; }
  virtual void load_state(const std::any& state) { (void)state; }
};

}  // namespace protemp::sim
