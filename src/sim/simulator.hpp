// Time-stepped multi-core simulator with thermal co-simulation.
//
// Models the system of Sec. 3.1: n cores each running one task at a time, a
// centralized FIFO task queue, per-core thermal sensors, and a thermal
// management unit that applies DFS every `dfs_period`. Execution advances in
// fixed steps of `dt` (the paper's 0.4 ms); tasks complete mid-step with
// exact sub-step accounting, and a core that finishes pulls the next queued
// task immediately so no capacity is lost to step granularity.
//
// The simulator owns only the *plant*: task execution, power, thermals,
// sensors and metrics. All control decisions flow through a sim::Controller
// (see control_loop.hpp) that the simulator drives with one TelemetryFrame
// per step — the simulator is one driver of a control loop, external
// telemetry (api::ControlSession open-loop mode) is another. The
// policy-pair overload below wraps the policies in a ControlLoop, which
// reproduces the historical monolithic behavior exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/platform.hpp"
#include "power/power_model.hpp"
#include "sim/control_loop.hpp"
#include "sim/metrics.hpp"
#include "sim/policies.hpp"
#include "thermal/model.hpp"
#include "workload/task.hpp"

namespace protemp::sim {

struct SimConfig {
  double dt = 0.4e-3;          ///< thermal/execution step [s] (paper: 0.4 ms)
  double dfs_period = 0.1;     ///< DFS window [s] (paper: 100 ms)
  double tmax = 100.0;         ///< max allowed core temperature [degC]
  std::vector<double> band_edges = {80.0, 90.0, 100.0};  ///< Fig. 6 bands

  /// Initial node temperatures; if unset, the background-power steady state.
  std::optional<double> initial_temperature;

  /// Frequency quantum [Hz]; policies' outputs are floored to a multiple of
  /// it (0 = continuous). Flooring only lowers power, so it cannot break the
  /// Pro-Temp guarantee.
  double frequency_quantum = 0.0;

  /// Lower frequency rail [Hz] (scenario key `sim.fmin`): every commanded
  /// frequency is clamped to [fmin, platform fmax], and the rail wins over
  /// the quantum — without it, any request inside (0, quantum) floors to a
  /// 0 Hz state most platforms do not have. Default 0 preserves historical
  /// behavior exactly; with fmin > 0, thermal trips idle at the rail
  /// instead of power-gating (raising, not lowering, power — so a nonzero
  /// rail slightly weakens the trip, which is the hardware's reality).
  double fmin = 0.0;

  /// Optional temperature-dependent core leakage added on top of dynamic
  /// power (extension; off by default to match the paper).
  std::optional<power::LeakagePowerModel> core_leakage;

  /// Record per-core temperatures every `trace_sample_period` seconds
  /// (0 = off). Figures 1, 2 and 8 are produced from this trace.
  double trace_sample_period = 0.0;

  /// Gaussian sensor noise (stddev, degC) applied to the readings handed to
  /// the policies — metrics always use the true temperatures (extension:
  /// robustness ablation; real thermal sensors are 1-3 degC accurate).
  double sensor_noise_stddev = 0.0;
  std::uint64_t sensor_noise_seed = 7777;

  /// Linalg backend of the plant's thermal stepping (scenario key
  /// `sim.thermal_backend`). kAuto resolves by platform size; steps are
  /// bitwise identical across backends (only the steady-state *initial*
  /// temperature solve differs, to ~1e-12 relative, when
  /// `initial_temperature` is unset).
  linalg::MatrixBackend thermal_backend = linalg::MatrixBackend::kAuto;
};

/// One row of the recorded temperature trace.
struct TraceSample {
  double time = 0.0;
  linalg::Vector core_temps;
};

struct SimResult {
  Metrics metrics;
  std::vector<TraceSample> temperature_trace;
  std::size_t tasks_admitted = 0;
  std::size_t tasks_completed = 0;
  std::size_t tasks_left_queued = 0;  ///< still waiting at end of run
  std::size_t tasks_in_flight = 0;    ///< on a core at end of run
  double sim_time = 0.0;
  double mean_frequency = 0.0;  ///< time-average of the per-core mean [Hz]
};

class MulticoreSimulator {
 public:
  MulticoreSimulator(const arch::Platform& platform, SimConfig config);

  /// Runs `trace` in closed loop against `controller` for `duration`
  /// seconds of simulated time. The controller is reset() first (a run is
  /// one complete episode); it then receives one TelemetryFrame per `dt`
  /// step and answers every assignment query. The controller's cadence
  /// (ControlLoop::Config dt/dfs_period) must match this simulator's
  /// SimConfig, or window accounting will disagree.
  SimResult run(const workload::TaskTrace& trace, Controller& controller,
                double duration);

  /// Historical entry point: wraps the policies in a ControlLoop built from
  /// this simulator's config and runs it — behavior is identical to the
  /// pre-extraction monolithic loop, bit for bit. Both policies are
  /// reset() first.
  SimResult run(const workload::TaskTrace& trace, DfsPolicy& dfs,
                AssignmentPolicy& assignment, double duration);

  const SimConfig& config() const noexcept { return config_; }
  const arch::Platform& platform() const noexcept { return platform_; }

 private:
  const arch::Platform& platform_;
  SimConfig config_;
  thermal::ThermalModel model_;
};

}  // namespace protemp::sim
