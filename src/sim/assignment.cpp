#include "sim/assignment.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace protemp::sim {
namespace {

void check_not_empty(const AssignmentContext& ctx, const char* who) {
  if (ctx.idle_cores.empty()) {
    throw std::invalid_argument(std::string(who) +
                                ": no idle cores to pick from");
  }
}

}  // namespace

std::size_t FirstIdleAssignment::pick(const AssignmentContext& ctx) {
  check_not_empty(ctx, "FirstIdleAssignment");
  std::size_t best = ctx.idle_cores.front();
  for (const std::size_t c : ctx.idle_cores) best = std::min(best, c);
  return best;
}

std::size_t CoolestFirstAssignment::pick(const AssignmentContext& ctx) {
  check_not_empty(ctx, "CoolestFirstAssignment");
  std::size_t best = ctx.idle_cores.front();
  for (const std::size_t c : ctx.idle_cores) {
    if (ctx.core_temps[c] < ctx.core_temps[best]) best = c;
  }
  return best;
}

std::size_t RoundRobinAssignment::pick(const AssignmentContext& ctx) {
  check_not_empty(ctx, "RoundRobinAssignment");
  // Scan from the cursor for the next idle core (by index, wrapping).
  const std::size_t n = ctx.core_temps.size();
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t candidate = (next_ + offset) % n;
    for (const std::size_t c : ctx.idle_cores) {
      if (c == candidate) {
        next_ = (candidate + 1) % n;
        return candidate;
      }
    }
  }
  return ctx.idle_cores.front();  // unreachable if idle_cores is consistent
}

std::any RoundRobinAssignment::save_state() const { return next_; }

void RoundRobinAssignment::load_state(const std::any& state) {
  next_ = policy_state_as<std::size_t>(state, "RoundRobinAssignment");
}

std::size_t RandomAssignment::pick(const AssignmentContext& ctx) {
  check_not_empty(ctx, "RandomAssignment");
  return ctx.idle_cores[rng_.uniform_index(ctx.idle_cores.size())];
}

std::any RandomAssignment::save_state() const { return rng_; }

void RandomAssignment::load_state(const std::any& state) {
  rng_ = policy_state_as<util::Rng>(state, "RandomAssignment");
}

AdaptiveRandomAssignment::AdaptiveRandomAssignment(std::uint64_t seed,
                                                   double history_decay,
                                                   double sharpness)
    : rng_(seed), seed_(seed), decay_(history_decay), sharpness_(sharpness) {
  if (history_decay <= 0.0 || history_decay >= 1.0) {
    throw std::invalid_argument(
        "AdaptiveRandomAssignment: history_decay must be in (0, 1)");
  }
  if (sharpness <= 0.0) {
    throw std::invalid_argument(
        "AdaptiveRandomAssignment: sharpness must be > 0");
  }
}

void AdaptiveRandomAssignment::reset() {
  rng_ = util::Rng(seed_);
  history_.clear();
}

std::any AdaptiveRandomAssignment::save_state() const {
  return Snapshot{rng_, history_};
}

void AdaptiveRandomAssignment::load_state(const std::any& state) {
  const Snapshot& snapshot =
      policy_state_as<Snapshot>(state, "AdaptiveRandomAssignment");
  rng_ = snapshot.rng;
  history_ = snapshot.history;
}

double AdaptiveRandomAssignment::history(std::size_t core) const {
  if (core >= history_.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return history_[core];
}

std::size_t AdaptiveRandomAssignment::pick(const AssignmentContext& ctx) {
  check_not_empty(ctx, "AdaptiveRandomAssignment");
  const std::size_t n = ctx.core_temps.size();
  if (history_.size() != n) {
    history_.assign(ctx.core_temps.begin(), ctx.core_temps.end());
  }
  for (std::size_t c = 0; c < n; ++c) {
    history_[c] = decay_ * history_[c] + (1.0 - decay_) * ctx.core_temps[c];
  }

  double hottest = history_[ctx.idle_cores.front()];
  for (const std::size_t c : ctx.idle_cores) {
    hottest = std::max(hottest, history_[c]);
  }
  double total_weight = 0.0;
  std::vector<double> weights;
  weights.reserve(ctx.idle_cores.size());
  for (const std::size_t c : ctx.idle_cores) {
    const double w = std::pow(hottest - history_[c] + 1.0, sharpness_);
    weights.push_back(w);
    total_weight += w;
  }
  double draw = rng_.uniform() * total_weight;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return ctx.idle_cores[i];
  }
  return ctx.idle_cores.back();
}

}  // namespace protemp::sim
