#include "api/scenario.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace protemp::api {

namespace {

using ProfileFactory = std::vector<workload::BenchmarkProfile> (*)();

/// Name → profile-set table; keep sorted by name.
constexpr std::pair<const char*, ProfileFactory> kWorkloads[] = {
    {"compute", workload::compute_intensive_profiles},
    {"high-load", workload::high_load_profiles},
    {"mixed", workload::mixed_benchmark_profiles},
    {"web", workload::web_profiles},
};

}  // namespace

StatusOr<std::vector<workload::BenchmarkProfile>> workload_profiles(
    const std::string& name) {
  for (const auto& [key, factory] : kWorkloads) {
    if (name == key) return factory();
  }
  return Status::not_found("unknown workload '" + name + "' (known: " +
                           util::join(workload_names(), ", ") + ")");
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& [key, factory] : kWorkloads) {
    (void)factory;
    names.emplace_back(key);
  }
  return names;
}

namespace {

/// Shortest decimal form that parses back to exactly the same double, so
/// serialize() -> parse() is lossless without %.17g noise.
std::string format_double(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc() ? std::string(buffer, ptr)
                           : util::format("%.17g", value);
}

Status line_error(std::size_t line, const std::string& message) {
  return Status::invalid_argument("line " + std::to_string(line) + ": " +
                                  message);
}

/// One parsed `key = value` assignment with its source line (for
/// diagnostics).
struct Assignment {
  std::size_t line = 0;
  std::string key;
  std::string value;
};

class SpecParser {
 public:
  explicit SpecParser(ScenarioSpec& spec) : spec_(spec) {}

  Status apply(const Assignment& a) {
    const std::string& key = a.key;
    if (key == "name") return set_string(a, spec_.name);
    if (key == "platform") return set_string(a, spec_.platform);
    if (key == "workload") return set_string(a, spec_.workload);
    if (key == "duration") return set_double(a, spec_.duration);
    if (key == "seed") return set_seed(a, spec_.seed);
    if (key == "dfs") return set_string(a, spec_.dfs_policy);
    if (key == "assignment") return set_string(a, spec_.assignment_policy);

    if (key == "sim.dt") return set_double(a, spec_.sim.dt);
    if (key == "sim.dfs_period") return set_double(a, spec_.sim.dfs_period);
    if (key == "sim.tmax") return set_double(a, spec_.sim.tmax);
    if (key == "sim.band_edges") return set_band_edges(a);
    if (key == "sim.initial_temperature") {
      return set_optional_double(a, spec_.sim.initial_temperature);
    }
    if (key == "sim.frequency_quantum") {
      return set_double(a, spec_.sim.frequency_quantum);
    }
    if (key == "sim.fmin") return set_double(a, spec_.sim.fmin);
    if (key == "sim.trace_sample_period") {
      return set_double(a, spec_.sim.trace_sample_period);
    }
    if (key == "sim.sensor_noise_stddev") {
      return set_double(a, spec_.sim.sensor_noise_stddev);
    }
    if (key == "sim.sensor_noise_seed") {
      return set_seed(a, spec_.sim.sensor_noise_seed);
    }
    if (key == "sim.thermal_backend") {
      return set_backend(a, spec_.sim.thermal_backend);
    }
    // Temperature-dependent leakage (paper extension). The three keys stage
    // into plain doubles; finish() assembles the LeakagePowerModel once the
    // whole spec is parsed (nominal is the enabling key).
    if (key == "sim.core_leakage.nominal") {
      return set_staged_double(a, leakage_nominal_);
    }
    if (key == "sim.core_leakage.sensitivity") {
      return set_staged_double(a, leakage_sensitivity_);
    }
    if (key == "sim.core_leakage.ref_celsius") {
      return set_staged_double(a, leakage_ref_);
    }

    if (key == "opt.tmax") return set_double(a, spec_.optimizer.tmax);
    if (key == "opt.dfs_period") {
      return set_double(a, spec_.optimizer.dfs_period);
    }
    if (key == "opt.dt") return set_double(a, spec_.optimizer.dt);
    if (key == "opt.uniform_frequency") {
      return set_bool(a, spec_.optimizer.uniform_frequency);
    }
    if (key == "opt.minimize_gradient") {
      return set_bool(a, spec_.optimizer.minimize_gradient);
    }
    if (key == "opt.gradient_weight") {
      return set_double(a, spec_.optimizer.gradient_weight);
    }
    if (key == "opt.gradient_step_stride") {
      return set_size(a, spec_.optimizer.gradient_step_stride);
    }
    if (key == "opt.constraint_slack") {
      return set_double(a, spec_.optimizer.constraint_slack);
    }
    if (key == "opt.sigma_floor") {
      return set_double(a, spec_.optimizer.sigma_floor);
    }
    if (key == "opt.power_budget_watts") {
      return set_optional_double(a, spec_.optimizer.power_budget_watts);
    }
    if (key == "opt.warm_start") {
      return set_bool(a, spec_.optimizer.warm_start);
    }
    if (key == "opt.backend") {
      return set_backend(a, spec_.optimizer.backend);
    }
    // Solver iteration budgets (convex::BarrierOptions). 0 means unlimited
    // for the two fixed-budget keys; max_newton_per_stage must stay >= 1
    // (validated below — 0 would make every centering stage a no-op).
    if (key == "opt.max_newton_per_stage") {
      return set_size(a, spec_.optimizer.solver.max_newton_per_stage);
    }
    if (key == "opt.max_newton_iters") {
      return set_size(a, spec_.optimizer.solver.max_newton_total);
    }
    if (key == "opt.solve_deadline") {
      return set_double(a, spec_.optimizer.solver.solve_deadline_seconds);
    }
    if (key == "opt.node_tmax") return set_node_tmax(a);
    if (key == "opt.table_interp_stride") {
      return set_size(a, spec_.optimizer.table_interp_stride);
    }

    if (key.rfind("platform.", 0) == 0) {
      spec_.platform_options.set(key.substr(9), a.value);
      return Status();
    }
    if (key.rfind("dfs.", 0) == 0) {
      spec_.dfs_options.set(key.substr(4), a.value);
      return Status();
    }
    if (key.rfind("assignment.", 0) == 0) {
      spec_.assignment_options.set(key.substr(11), a.value);
      return Status();
    }
    return line_error(a.line, "unknown key '" + key + "'");
  }

  /// Completes multi-key staged fields once every line is consumed:
  /// assembles sim.core_leakage from its three keys (sensitivity and
  /// reference default to deep-submicron-typical values when omitted).
  Status finish() {
    if (!leakage_nominal_ && (leakage_sensitivity_ || leakage_ref_)) {
      return line_error(leakage_line_,
                        "sim.core_leakage.* requires "
                        "sim.core_leakage.nominal");
    }
    if (leakage_nominal_) {
      try {
        spec_.sim.core_leakage = power::LeakagePowerModel(
            *leakage_nominal_, leakage_sensitivity_.value_or(0.02),
            leakage_ref_.value_or(80.0));
      } catch (const std::exception& e) {
        return line_error(leakage_line_,
                          std::string("sim.core_leakage: ") + e.what());
      }
    }
    return Status();
  }

 private:
  Status set_string(const Assignment& a, std::string& out) {
    if (a.value.empty()) {
      return line_error(a.line, "key '" + a.key + "': empty value");
    }
    out = a.value;
    return Status();
  }

  Status set_double(const Assignment& a, double& out) {
    try {
      out = util::parse_double(a.value);
    } catch (const std::exception&) {
      return line_error(a.line, "key '" + a.key +
                                    "': expected a number, got '" + a.value +
                                    "'");
    }
    return Status();
  }

  Status set_optional_double(const Assignment& a, std::optional<double>& out) {
    double value = 0.0;
    if (Status s = set_double(a, value); !s.ok()) return s;
    out = value;
    return Status();
  }

  Status set_bool(const Assignment& a, bool& out) {
    const std::optional<bool> value = util::parse_bool(a.value);
    if (!value) {
      return line_error(a.line, "key '" + a.key +
                                    "': expected a boolean, got '" + a.value +
                                    "'");
    }
    out = *value;
    return Status();
  }

  // Full std::uint64_t range (std::to_string of any seed must re-parse, or
  // serialize() -> parse() would not round-trip).
  Status set_seed(const Assignment& a, std::uint64_t& out) {
    const std::optional<std::uint64_t> value = util::parse_uint64(a.value);
    if (!value) {
      return line_error(a.line, "key '" + a.key +
                                    "': expected a non-negative integer, "
                                    "got '" + a.value + "'");
    }
    out = *value;
    return Status();
  }

  Status set_size(const Assignment& a, std::size_t& out) {
    std::uint64_t value = 0;
    if (Status s = set_seed(a, value); !s.ok()) return s;
    out = static_cast<std::size_t>(value);
    return Status();
  }

  Status set_backend(const Assignment& a, linalg::MatrixBackend& out) {
    const auto value = linalg::parse_backend(a.value);
    if (!value) {
      return line_error(a.line, "key '" + a.key +
                                    "': expected auto|dense|sparse, got '" +
                                    a.value + "'");
    }
    out = *value;
    return Status();
  }

  Status set_staged_double(const Assignment& a, std::optional<double>& out) {
    if (leakage_line_ == 0) leakage_line_ = a.line;
    return set_optional_double(a, out);
  }

  /// `opt.node_tmax = block:celsius[,block:celsius...]` — per-node ceilings
  /// on non-core floorplan blocks. Block existence is checked by the
  /// optimizer against the actual floorplan; the spec layer validates shape.
  Status set_node_tmax(const Assignment& a) {
    std::vector<std::pair<std::string, double>> ceilings;
    for (const std::string& part : util::split(a.value, ',')) {
      const std::string entry = std::string(util::trim(part));
      const std::size_t colon = entry.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == entry.size()) {
        return line_error(a.line,
                          "key 'opt.node_tmax': expected "
                          "'block:celsius[,block:celsius...]', got '" +
                              a.value + "'");
      }
      double tmax = 0.0;
      try {
        tmax = util::parse_double(entry.substr(colon + 1));
      } catch (const std::exception&) {
        return line_error(a.line, "key 'opt.node_tmax': expected a number "
                                  "after ':' in '" + entry + "'");
      }
      ceilings.emplace_back(std::string(util::trim(entry.substr(0, colon))),
                            tmax);
    }
    if (ceilings.empty()) {
      return line_error(a.line, "key 'opt.node_tmax': empty list");
    }
    spec_.optimizer.node_ceilings = std::move(ceilings);
    return Status();
  }

  Status set_band_edges(const Assignment& a) {
    std::vector<double> edges;
    for (const std::string& part : util::split(a.value, ',')) {
      try {
        edges.push_back(util::parse_double(util::trim(part)));
      } catch (const std::exception&) {
        return line_error(a.line, "key 'sim.band_edges': expected a "
                                  "comma-separated list of numbers, got '" +
                                      a.value + "'");
      }
    }
    if (edges.empty()) {
      return line_error(a.line, "key 'sim.band_edges': empty list");
    }
    spec_.sim.band_edges = std::move(edges);
    return Status();
  }

  ScenarioSpec& spec_;
  std::optional<double> leakage_nominal_;
  std::optional<double> leakage_sensitivity_;
  std::optional<double> leakage_ref_;
  std::size_t leakage_line_ = 0;  ///< first sim.core_leakage.* line seen
};

}  // namespace

StatusOr<ScenarioSpec> ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  SpecParser parser(spec);
  std::set<std::string> seen;
  std::size_t line_number = 0;
  for (const std::string& raw : util::split(std::string(text), '\n')) {
    ++line_number;
    std::string_view line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return line_error(line_number,
                        "expected 'key = value', got '" + std::string(line) +
                            "'");
    }
    Assignment a;
    a.line = line_number;
    a.key = std::string(util::trim(line.substr(0, eq)));
    a.value = std::string(util::trim(line.substr(eq + 1)));
    if (a.key.empty()) return line_error(line_number, "empty key");
    if (!seen.insert(a.key).second) {
      return line_error(line_number, "duplicate key '" + a.key + "'");
    }
    if (Status s = parser.apply(a); !s.ok()) return s;
  }
  if (Status s = parser.finish(); !s.ok()) return s;
  if (Status s = spec.validate(); !s.ok()) return s;
  return spec;
}

Status ScenarioSpec::validate() const {
  const auto fail = [this](const std::string& message) {
    return Status::invalid_argument("scenario '" + name + "': " + message);
  };
  // The text format is line-oriented, so embedded newlines in any string
  // field would break the serialize() -> parse() round-trip; reject them
  // here rather than emitting an unparseable file.
  const auto line_safe = [](const std::string& text) {
    return text.find('\n') == std::string::npos &&
           text.find('\r') == std::string::npos;
  };
  const auto options_line_safe = [&line_safe](const Options& options) {
    for (const auto& [key, value] : options.entries()) {
      if (!line_safe(key) || !line_safe(value)) return false;
    }
    return true;
  };
  if (!line_safe(name) || !line_safe(platform) || !line_safe(workload) ||
      !line_safe(dfs_policy) || !line_safe(assignment_policy) ||
      !options_line_safe(platform_options) ||
      !options_line_safe(dfs_options) ||
      !options_line_safe(assignment_options)) {
    return Status::invalid_argument(
        "scenario: string fields must not contain newlines");
  }
  if (duration <= 0.0) return fail("duration must be positive");
  if (sim.dt <= 0.0) return fail("sim.dt must be positive");
  if (sim.dfs_period < sim.dt) return fail("sim.dfs_period must be >= sim.dt");
  // Mirrors the ControlLoop/SimConfig constructors, so a drifting cadence
  // is rejected at the spec layer, before any simulation object exists.
  const double window_ratio = sim.dfs_period / sim.dt;
  if (std::abs(window_ratio - std::llround(window_ratio)) > 1e-9) {
    return fail("sim.dfs_period must be an integer multiple of sim.dt "
                "(ratio " + std::to_string(window_ratio) +
                " would drift the actuation cadence)");
  }
  if (sim.frequency_quantum < 0.0) {
    return fail("sim.frequency_quantum must be >= 0");
  }
  if (sim.fmin < 0.0) return fail("sim.fmin must be >= 0");
  // The recorded trace's nominal period must be realizable: a fractional
  // period/dt ratio silently rounds to a different effective cadence.
  if (sim.trace_sample_period > 0.0) {
    const double trace_ratio = sim.trace_sample_period / sim.dt;
    if (std::abs(trace_ratio - std::llround(trace_ratio)) > 1e-9 ||
        trace_ratio < 0.5) {
      return fail("sim.trace_sample_period must be an integer multiple of "
                  "sim.dt (ratio " + std::to_string(trace_ratio) + ")");
    }
  }
  if (optimizer.dt <= 0.0) return fail("opt.dt must be positive");
  if (optimizer.dfs_period < optimizer.dt) {
    return fail("opt.dfs_period must be >= opt.dt");
  }
  // Same integrality rule on the optimizer's horizon: Phase 1 must certify
  // exactly the window the control loop actuates, not a rounded one.
  const double horizon_ratio = optimizer.dfs_period / optimizer.dt;
  if (std::abs(horizon_ratio - std::llround(horizon_ratio)) > 1e-9) {
    return fail("opt.dfs_period must be an integer multiple of opt.dt "
                "(ratio " + std::to_string(horizon_ratio) + ")");
  }
  if (optimizer.gradient_step_stride < 1) {
    return fail("opt.gradient_step_stride must be >= 1");
  }
  if (optimizer.solver.max_newton_per_stage < 1) {
    return fail("opt.max_newton_per_stage must be >= 1");
  }
  if (optimizer.solver.solve_deadline_seconds < 0.0 ||
      !std::isfinite(optimizer.solver.solve_deadline_seconds)) {
    return fail("opt.solve_deadline must be >= 0 (0 disables the deadline)");
  }
  if (optimizer.table_interp_stride < 1) {
    return fail("opt.table_interp_stride must be >= 1 (1 serves the fine "
                "table directly)");
  }
  for (const auto& [block_name, tmax] : optimizer.node_ceilings) {
    if (block_name.empty() || !line_safe(block_name) ||
        block_name.find(':') != std::string::npos ||
        block_name.find(',') != std::string::npos) {
      return fail("opt.node_tmax block name '" + block_name +
                  "' must be non-empty and contain no ':' or ','");
    }
    if (!std::isfinite(tmax) || tmax <= 0.0) {
      return fail("opt.node_tmax for '" + block_name +
                  "' must be finite and positive");
    }
  }
  for (std::size_t i = 1; i < sim.band_edges.size(); ++i) {
    if (sim.band_edges[i] <= sim.band_edges[i - 1]) {
      return fail("sim.band_edges must be strictly increasing");
    }
  }
  if (const auto profiles = workload_profiles(workload); !profiles.ok()) {
    return profiles.status().with_context("scenario '" + name + "'");
  }
  const PolicyRegistry& registry = PolicyRegistry::instance();
  if (!registry.has_platform(platform)) {
    return Status::not_found(
        "scenario '" + name + "': unknown platform '" + platform +
        "' (known: " + util::join(registry.platform_names(), ", ") + ")");
  }
  if (!registry.has_dfs(dfs_policy)) {
    return Status::not_found(
        "scenario '" + name + "': unknown dfs policy '" + dfs_policy +
        "' (known: " + util::join(registry.dfs_names(), ", ") + ")");
  }
  if (!registry.has_assignment(assignment_policy)) {
    return Status::not_found(
        "scenario '" + name + "': unknown assignment policy '" +
        assignment_policy + "' (known: " +
        util::join(registry.assignment_names(), ", ") + ")");
  }
  return Status();
}

std::string ScenarioSpec::serialize() const {
  std::ostringstream out;
  const auto emit = [&out](const std::string& key, const std::string& value) {
    out << key << " = " << value << "\n";
  };
  const auto emit_options = [&emit](const std::string& prefix,
                                    const Options& options) {
    for (const auto& [key, value] : options.entries()) {
      emit(prefix + "." + key, value);
    }
  };

  emit("name", name);
  emit("platform", platform);
  emit_options("platform", platform_options);
  emit("workload", workload);
  emit("duration", format_double(duration));
  emit("seed", std::to_string(seed));

  if (sim.core_leakage) {
    emit("sim.core_leakage.nominal", format_double(sim.core_leakage->nominal()));
    emit("sim.core_leakage.sensitivity",
         format_double(sim.core_leakage->sensitivity()));
    emit("sim.core_leakage.ref_celsius",
         format_double(sim.core_leakage->ref_celsius()));
  }
  emit("sim.dt", format_double(sim.dt));
  emit("sim.dfs_period", format_double(sim.dfs_period));
  emit("sim.tmax", format_double(sim.tmax));
  std::vector<std::string> edges;
  edges.reserve(sim.band_edges.size());
  for (const double e : sim.band_edges) edges.push_back(format_double(e));
  emit("sim.band_edges", util::join(edges, ","));
  if (sim.initial_temperature) {
    emit("sim.initial_temperature", format_double(*sim.initial_temperature));
  }
  emit("sim.frequency_quantum", format_double(sim.frequency_quantum));
  emit("sim.fmin", format_double(sim.fmin));
  emit("sim.trace_sample_period", format_double(sim.trace_sample_period));
  emit("sim.sensor_noise_stddev", format_double(sim.sensor_noise_stddev));
  emit("sim.sensor_noise_seed", std::to_string(sim.sensor_noise_seed));
  emit("sim.thermal_backend", linalg::to_string(sim.thermal_backend));

  emit("opt.tmax", format_double(optimizer.tmax));
  emit("opt.dfs_period", format_double(optimizer.dfs_period));
  emit("opt.dt", format_double(optimizer.dt));
  emit("opt.uniform_frequency", optimizer.uniform_frequency ? "true" : "false");
  emit("opt.minimize_gradient",
       optimizer.minimize_gradient ? "true" : "false");
  emit("opt.gradient_weight", format_double(optimizer.gradient_weight));
  emit("opt.gradient_step_stride",
       std::to_string(optimizer.gradient_step_stride));
  emit("opt.constraint_slack", format_double(optimizer.constraint_slack));
  emit("opt.sigma_floor", format_double(optimizer.sigma_floor));
  if (optimizer.power_budget_watts) {
    emit("opt.power_budget_watts",
         format_double(*optimizer.power_budget_watts));
  }
  emit("opt.warm_start", optimizer.warm_start ? "true" : "false");
  emit("opt.backend", linalg::to_string(optimizer.backend));
  emit("opt.max_newton_per_stage",
       std::to_string(optimizer.solver.max_newton_per_stage));
  emit("opt.max_newton_iters",
       std::to_string(optimizer.solver.max_newton_total));
  emit("opt.solve_deadline",
       format_double(optimizer.solver.solve_deadline_seconds));
  // Het/ceiling extensions serialize only when set, keeping pre-existing
  // scenario files byte-stable through a serialize() round-trip.
  if (!optimizer.node_ceilings.empty()) {
    std::vector<std::string> parts;
    parts.reserve(optimizer.node_ceilings.size());
    for (const auto& [block_name, tmax] : optimizer.node_ceilings) {
      parts.push_back(block_name + ":" + format_double(tmax));
    }
    emit("opt.node_tmax", util::join(parts, ","));
  }
  if (optimizer.table_interp_stride != 1) {
    emit("opt.table_interp_stride",
         std::to_string(optimizer.table_interp_stride));
  }

  emit("dfs", dfs_policy);
  emit_options("dfs", dfs_options);
  emit("assignment", assignment_policy);
  emit_options("assignment", assignment_options);
  return out.str();
}

StatusOr<ScenarioSpec> ScenarioSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::not_found("cannot open scenario file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<ScenarioSpec> spec = parse(buffer.str());
  if (!spec.ok()) return spec.status().with_context(path);
  return spec;
}

Status ScenarioSpec::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::invalid_argument("cannot open '" + path + "' for writing");
  }
  out << serialize();
  out.flush();
  if (!out) {
    return Status::internal("failed writing scenario file '" + path + "'");
  }
  return Status();
}

}  // namespace protemp::api
