// Unified error model of the protemp::api facade.
//
// The inner layers keep their established idioms (constructors throw,
// throughput queries return std::optional, solve results carry a `feasible`
// flag); the api layer wraps all of them at the boundary so callers see one
// vocabulary: every fallible facade entry point returns a Status or a
// StatusOr<T>. Inspired by absl::Status, but dependency-free and small.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace protemp::api {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed input (bad option value, parse error)
  kNotFound,            ///< unknown registry name, missing file
  kAlreadyExists,       ///< duplicate registration
  kFailedPrecondition,  ///< valid input, unusable state (e.g. empty grid)
  kInternal,            ///< an inner layer threw something unexpected
};

/// Human-readable name of a code ("ok", "invalid-argument", ...).
std::string_view status_code_name(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status not_found(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status already_exists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status failed_precondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "<code-name>: <message>", or "ok".
  std::string to_string() const;

  /// Returns a copy with `context + ": "` prepended to the message; no-op
  /// on an ok status. Lets callers build "scenario 3: dfs policy: ..."
  /// chains without losing the code.
  Status with_context(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-ok Status. `value()` must only be called when
/// `ok()`; this is asserted in debug builds. T need not be
/// default-constructible (the value lives in a std::optional).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from an ok Status");
    if (status_.ok()) {
      status_ = Status::internal("StatusOr constructed from an ok Status");
    }
  }

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace protemp::api
