// Multi-session serving: N ControlSessions behind one cache and one pool.
//
// The ROADMAP north-star is serving many concurrent control sessions at
// hardware speed. A SessionFleet owns the two process-wide resources that
// make that cheap — a TableCache (so identical configurations share one
// Phase-1 build) and a util::ThreadPool (so those builds never run on a
// control thread) — plus the per-session state. Sessions are created in
// async mode by default: bringing a new session up costs microseconds, it
// serves the AsyncFallback until its table lands, and eight sessions with
// the same configuration trigger exactly one build between them
// (bench_fleet gates the resulting >= 4x aggregate throughput).
//
// Failure isolation: a session whose step() fails (bad frame, policy
// throw, failed table build) is latched as failed — its slot in every
// later step_all() reports the latched Status and its siblings keep
// serving. bench_fleet and tests/fleet_test.cpp cover the concurrency;
// the TSan CI job runs the latter.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "util/thread_pool.hpp"

namespace protemp::api {

struct FleetConfig {
  /// Worker threads for Phase-1 builds (0 = hardware concurrency).
  std::size_t build_threads = 0;
  /// Create sessions in non-blocking mode (the fleet's reason to exist);
  /// false builds every table synchronously inside add().
  bool async_builds = true;
  /// Served while a session's build is in flight (async mode).
  AsyncFallback fallback;
};

/// Point-in-time aggregate over every session in the fleet.
struct FleetMetrics {
  std::size_t sessions = 0;
  std::size_t failed = 0;            ///< latched-failed sessions
  std::size_t builds_pending = 0;    ///< sessions still serving fallback
  std::size_t builds_completed = 0;  ///< Phase-1 builds the cache ran
  std::size_t steps = 0;             ///< total frames consumed
  std::size_t windows = 0;           ///< total DFS-window decisions
  std::size_t fallback_windows = 0;  ///< windows served by fallbacks
  std::size_t trips = 0;             ///< frames with a thermal intervention
};

class SessionFleet {
 public:
  explicit SessionFleet(FleetConfig config = {});

  /// Builds one session per spec (all sharing the fleet cache/pool). Every
  /// spec is attempted; on any failure returns one Status aggregating
  /// every failing (index, name, status), mirroring ScenarioRunner.
  static StatusOr<std::unique_ptr<SessionFleet>> create(
      const std::vector<ScenarioSpec>& specs, FleetConfig config = {});

  /// Adds a session built from `spec`; returns its fleet index.
  StatusOr<std::size_t> add(const ScenarioSpec& spec);

  /// Adopts an externally built session (tests, custom policies); it
  /// should share this fleet's cache/pool if it builds asynchronously.
  std::size_t adopt(std::unique_ptr<ControlSession> session);

  std::size_t size() const noexcept { return entries_.size(); }
  ControlSession& session(std::size_t index) {
    return *entries_.at(index).session;
  }
  const ControlSession& session(std::size_t index) const {
    return *entries_.at(index).session;
  }
  /// Ok while the session is healthy; the latched first failure after.
  const Status& session_status(std::size_t index) const {
    return entries_.at(index).status;
  }

  /// Steps every healthy session with its frame (frames[i] -> session i;
  /// sizes must match). Slot i of the result is the session's command, its
  /// fresh failure, or its previously latched failure — a failed session
  /// is never stepped again and never stalls its siblings.
  std::vector<StatusOr<ActuationCommand>> step_all(
      const std::vector<sim::TelemetryFrame>& frames);

  /// True while any healthy session's Phase-1 build is still in flight.
  bool any_build_pending() const;

  FleetMetrics metrics() const;

  TableCache& table_cache() noexcept { return cache_; }
  util::ThreadPool& build_pool() noexcept { return pool_; }

 private:
  struct Entry {
    std::unique_ptr<ControlSession> session;
    Status status;            ///< latched first failure
    std::size_t trips = 0;    ///< frames with intervened commands
  };

  FleetConfig config_;
  // Declaration order is load-bearing: pool jobs (async builds) touch the
  // cache, so the pool must be destroyed (draining them) before the cache.
  TableCache cache_;
  util::ThreadPool pool_;
  std::vector<Entry> entries_;
};

}  // namespace protemp::api
