// Multi-session serving: N ControlSessions behind one cache and one pool.
//
// The ROADMAP north-star is serving many concurrent control sessions at
// hardware speed. A SessionFleet owns the two process-wide resources that
// make that cheap — a TableCache (so identical configurations share one
// Phase-1 build) and a util::ThreadPool (so those builds never run on a
// control thread) — plus the per-session state. Sessions are created in
// async mode by default: bringing a new session up costs microseconds, it
// serves the AsyncFallback until its table lands, and eight sessions with
// the same configuration trigger exactly one build between them
// (bench_fleet gates the resulting >= 4x aggregate throughput).
//
// Membership is dynamic: add_session/remove_session give the fleet
// slot-based churn (a removed session frees its slot; the next add reuses
// the lowest free slot, so long-lived fleets don't grow without bound).
// An empty slot steps as NotFound and drops out of the aggregates.
//
// Failure isolation: a session whose step fails (bad frame, policy throw,
// failed table build) is latched as failed — its slot in every later
// step reports the latched Status and its siblings keep serving.
// Removing a failed session and reusing the slot clears the latch.
//
// SessionFleet is single-threaded (external synchronization is the
// caller's). ShardedFleet below is the thread-safe composition: N shards,
// each its own SessionFleet + cache + build pool behind one mutex, with
// hash-based placement and explicit migration. bench_fleet,
// bench_fleetsim and tests/{fleet,sharded_fleet}_test.cpp cover the
// concurrency; the TSan CI job runs the tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "api/status.hpp"
#include "util/thread_pool.hpp"

namespace protemp::api {

struct FleetConfig {
  /// Worker threads for Phase-1 builds (0 = hardware concurrency).
  std::size_t build_threads = 0;
  /// Create sessions in non-blocking mode (the fleet's reason to exist);
  /// false builds every table synchronously inside add().
  bool async_builds = true;
  /// Served while a session's build is in flight (async mode).
  AsyncFallback fallback;
  /// Persistent table tier (optional): attached to the fleet's TableCache
  /// so cold starts and restarts load prior builds from disk instead of
  /// re-solving, and completed builds are written through for the next
  /// process. See store::TableStore and DESIGN.md §6e.
  std::shared_ptr<store::TableStore> table_store;
};

/// Point-in-time aggregate over every session in the fleet.
struct FleetMetrics {
  std::size_t sessions = 0;          ///< occupied slots
  std::size_t failed = 0;            ///< latched-failed sessions
  std::size_t builds_pending = 0;    ///< sessions still serving fallback
  std::size_t builds_completed = 0;  ///< Phase-1 builds the cache ran
  std::size_t steps = 0;             ///< total frames consumed
  std::size_t windows = 0;           ///< total DFS-window decisions
  std::size_t fallback_windows = 0;  ///< windows served by fallbacks
  std::size_t trips = 0;             ///< frames with a thermal intervention
};

class SessionFleet {
 public:
  explicit SessionFleet(FleetConfig config = {});

  /// Builds one session per spec (all sharing the fleet cache/pool). Every
  /// spec is attempted; on any failure returns one Status aggregating
  /// every failing (index, name, status), mirroring ScenarioRunner.
  static StatusOr<std::unique_ptr<SessionFleet>> create(
      const std::vector<ScenarioSpec>& specs, FleetConfig config = {});

  /// Adds a session built from `spec`; returns its slot index. Reuses the
  /// lowest free slot (clearing any latched failure it held) before
  /// growing the fleet.
  StatusOr<std::size_t> add_session(const ScenarioSpec& spec);
  /// Historical alias for add_session.
  StatusOr<std::size_t> add(const ScenarioSpec& spec) {
    return add_session(spec);
  }

  /// Adopts an externally built session (tests, custom policies); it
  /// should share this fleet's cache/pool if it builds asynchronously.
  /// Same slot-reuse rule as add_session.
  std::size_t adopt(std::unique_ptr<ControlSession> session);

  /// Frees a slot: the session is destroyed, its latched status cleared,
  /// and the slot becomes reusable. NotFound if `index` is out of range
  /// or already empty.
  Status remove_session(std::size_t index);

  /// Number of slots ever allocated (free slots included); valid step /
  /// session indices are [0, size()). Occupied count is sessions().
  std::size_t size() const noexcept { return entries_.size(); }
  /// Number of occupied slots.
  std::size_t sessions() const noexcept;
  bool occupied(std::size_t index) const {
    return index < entries_.size() && entries_[index].session != nullptr;
  }
  /// Caller must check occupied(index) first — an empty slot has no
  /// session to return.
  ControlSession& session(std::size_t index) {
    return *entries_.at(index).session;
  }
  const ControlSession& session(std::size_t index) const {
    return *entries_.at(index).session;
  }
  /// Ok while the session is healthy; the latched first failure after.
  const Status& session_status(std::size_t index) const {
    return entries_.at(index).status;
  }

  /// Steps one slot with latching: a failed session reports its latched
  /// Status on every later call and is never stepped again. NotFound for
  /// an empty or out-of-range slot.
  StatusOr<ActuationCommand> step_one(std::size_t index,
                                      const sim::TelemetryFrame& frame);

  /// Steps every slot with its frame (frames[i] -> slot i; sizes must
  /// match, empty slots included). Slot i of the result is the session's
  /// command, its (fresh or latched) failure, or NotFound for an empty
  /// slot — a failed session never stalls its siblings.
  std::vector<StatusOr<ActuationCommand>> step_all(
      const std::vector<sim::TelemetryFrame>& frames);

  /// True while any healthy session's Phase-1 build is still in flight.
  bool any_build_pending() const;

  FleetMetrics metrics() const;

  TableCache& table_cache() noexcept { return cache_; }
  util::ThreadPool& build_pool() noexcept { return pool_; }

 private:
  struct Entry {
    std::unique_ptr<ControlSession> session;  ///< nullptr = free slot
    Status status;            ///< latched first failure
    std::size_t trips = 0;    ///< frames with intervened commands
  };

  /// Lowest free slot, or entries_.size() if none (append).
  std::size_t claim_slot();

  FleetConfig config_;
  // Declaration order is load-bearing: pool jobs (async builds) touch the
  // cache, so the pool must be destroyed (draining them) before the cache.
  TableCache cache_;
  util::ThreadPool pool_;
  std::vector<Entry> entries_;
};

// ------------------------------------------------------------ ShardedFleet --

/// Stable handle to a session in a ShardedFleet; survives migration.
using SessionId = std::uint64_t;

struct ShardedFleetConfig {
  std::size_t shards = 4;
  /// Phase-1 build workers per shard (sized for one build at a time; the
  /// per-shard cache still dedups identical specs within the shard).
  std::size_t build_threads_per_shard = 1;
  bool async_builds = true;
  AsyncFallback fallback;
  /// Shared persistent tier for every shard's TableCache: per-shard
  /// caches don't share tables in memory, but through the store a table
  /// built on one shard (or in a previous process) serves them all.
  std::shared_ptr<store::TableStore> table_store;
};

/// Per-shard aggregate: the shard fleet's metrics plus migration traffic.
struct ShardMetrics {
  FleetMetrics fleet;
  std::size_t migrations_in = 0;
  std::size_t migrations_out = 0;
};

/// N SessionFleets behind one id space — the serving-side scale-out unit.
///
/// Each shard owns its SessionFleet (cache + build pool) behind one mutex,
/// so shards never contend with each other: aggregate throughput scales
/// with the shard count up to the hardware (bench_fleetsim gates this).
/// Sessions are addressed by SessionId; placement (id -> shard) is hashed
/// from the spec name by default (util::fnv1a64, stable across runs) and
/// changed only by explicit migrate().
///
/// Thread safety: every public method is safe to call concurrently, with
/// one contract — the caller must not step, snapshot, restore or remove a
/// session concurrently with migrating that same session (fleetsim's
/// per-tenant actors guarantee this by construction). Lock ordering:
/// placement lock before shard lock, never the reverse; at most one shard
/// lock is held at a time.
///
/// Migration contract (DESIGN.md §6d): the target session is rebuilt from
/// the source's ScenarioSpec, so spec-identical platform/policy types are
/// guaranteed; if the source's table is live, the target blocks until its
/// own build lands (per-shard caches don't share tables) before the
/// snapshot is restored, keeping the async phase matched.
class ShardedFleet {
 public:
  explicit ShardedFleet(ShardedFleetConfig config = {});

  /// Adds a session on the shard hashed from spec.name.
  StatusOr<SessionId> add(const ScenarioSpec& spec);
  /// Adds a session on an explicit shard.
  StatusOr<SessionId> add(const ScenarioSpec& spec, std::size_t shard);

  /// Destroys the session and frees its slot. NotFound for unknown ids.
  Status remove(SessionId id);

  /// Current shard of `id`; NotFound for unknown ids.
  StatusOr<std::size_t> shard_of(SessionId id) const;

  /// Steps one session (locking only its shard). Latched-failure semantics
  /// of SessionFleet::step_one apply.
  StatusOr<ActuationCommand> step(SessionId id,
                                  const sim::TelemetryFrame& frame);

  /// Steps a batch of same-shard sessions under one shard lock — the bulk
  /// path for a per-shard serving thread. Ids on a different shard report
  /// FailedPrecondition in their slot.
  std::vector<StatusOr<ActuationCommand>> step_shard(
      std::size_t shard,
      const std::vector<std::pair<SessionId, sim::TelemetryFrame>>& batch);

  StatusOr<SessionSnapshot> snapshot(SessionId id) const;
  Status restore(SessionId id, const SessionSnapshot& snapshot);

  /// Moves a session to `target_shard`: rebuilds it there from its spec,
  /// waits for the target's table when the source is live, restores the
  /// source's snapshot, then atomically re-points placement and frees the
  /// source slot. On failure the source is untouched. The caller must not
  /// step this id concurrently (see class comment).
  Status migrate(SessionId id, std::size_t target_shard);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Occupied sessions on one shard.
  std::size_t sessions_on(std::size_t shard) const;
  /// Total sessions across all shards.
  std::size_t size() const;
  /// Completed migrations, fleet-wide.
  std::size_t migrations() const;

  ShardMetrics shard_metrics(std::size_t shard) const;
  /// Aggregate over all shards.
  FleetMetrics metrics() const;

 private:
  struct Shard {
    explicit Shard(const FleetConfig& config) : fleet(config) {}
    mutable std::mutex mu;
    SessionFleet fleet;
    std::unordered_map<SessionId, std::size_t> slots;
    std::unordered_map<SessionId, ScenarioSpec> specs;
    std::size_t migrations_in = 0;
    std::size_t migrations_out = 0;
  };

  StatusOr<SessionId> add_on(const ScenarioSpec& spec, std::size_t shard);
  /// Looks up placement under the shared lock.
  StatusOr<std::size_t> placement_of(SessionId id) const;

  ShardedFleetConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::shared_mutex placement_mu_;
  std::unordered_map<SessionId, std::size_t> placement_;
  SessionId next_id_ = 1;
};

}  // namespace protemp::api
