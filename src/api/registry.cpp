#include "api/registry.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <ostream>
#include <set>
#include <stdexcept>

#include "api/async.hpp"
#include "arch/het.hpp"
#include "arch/mesh.hpp"
#include "arch/niagara.hpp"
#include "arch/stack.hpp"
#include "core/feedback_policies.hpp"
#include "core/policies.hpp"
#include "sim/assignment.hpp"
#include "store/interpolated_policy.hpp"
#include "store/table_store.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace protemp::api {

// ---------------------------------------------------------------- Options --

Options& Options::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
  return *this;
}

Options& Options::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

Options& Options::set(const std::string& key, double value) {
  return set(key, util::format("%.17g", value));
}

Options& Options::set(const std::string& key, bool value) {
  return set(key, std::string(value ? "true" : "false"));
}

bool Options::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

// ----------------------------------------------------------- OptionReader --

OptionReader::OptionReader(const Options& options) : options_(options) {}

std::string OptionReader::get_string(const std::string& key,
                                     std::string default_value) {
  consumed_[key] = true;
  const auto it = options_.entries().find(key);
  return it == options_.entries().end() ? std::move(default_value)
                                        : it->second;
}

double OptionReader::get_double(const std::string& key, double default_value) {
  consumed_[key] = true;
  const auto it = options_.entries().find(key);
  if (it == options_.entries().end()) return default_value;
  try {
    return util::parse_double(it->second);
  } catch (const std::exception&) {
    if (first_error_.ok()) {
      first_error_ = Status::invalid_argument(
          "option '" + key + "': expected a number, got '" + it->second + "'");
    }
    return default_value;
  }
}

long long OptionReader::get_int(const std::string& key,
                                long long default_value) {
  consumed_[key] = true;
  const auto it = options_.entries().find(key);
  if (it == options_.entries().end()) return default_value;
  try {
    return util::parse_int(it->second);
  } catch (const std::exception&) {
    if (first_error_.ok()) {
      first_error_ = Status::invalid_argument(
          "option '" + key + "': expected an integer, got '" + it->second +
          "'");
    }
    return default_value;
  }
}

bool OptionReader::get_bool(const std::string& key, bool default_value) {
  consumed_[key] = true;
  const auto it = options_.entries().find(key);
  if (it == options_.entries().end()) return default_value;
  if (const auto value = util::parse_bool(it->second)) return *value;
  if (first_error_.ok()) {
    first_error_ = Status::invalid_argument(
        "option '" + key + "': expected a boolean, got '" + it->second + "'");
  }
  return default_value;
}

std::uint64_t OptionReader::get_seed(const std::string& key,
                                     std::uint64_t default_value) {
  consumed_[key] = true;
  const auto it = options_.entries().find(key);
  if (it == options_.entries().end()) return default_value;
  // Full uint64 range, unlike get_int.
  if (const auto value = util::parse_uint64(it->second)) return *value;
  if (first_error_.ok()) {
    first_error_ = Status::invalid_argument(
        "option '" + key + "': expected a non-negative integer seed, got '" +
        it->second + "'");
  }
  return default_value;
}

Status OptionReader::finish() const {
  if (!first_error_.ok()) return first_error_;
  for (const auto& [key, value] : options_.entries()) {
    (void)value;
    if (!consumed_.count(key)) {
      return Status::invalid_argument("unknown option '" + key + "'");
    }
  }
  return Status();
}

// ------------------------------------------------------------- TableCache --

TableCache::TableCache(std::size_t stripes) {
  stripes_.reserve(std::max<std::size_t>(stripes, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(stripes, 1); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

TableCache::Stripe& TableCache::stripe_of(const std::string& key) {
  return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
}

std::shared_ptr<const core::FrequencyTable> TableCache::get_or_build(
    const std::string& key, const Builder& builder) {
  Stripe& stripe = stripe_of(key);
  std::promise<std::shared_ptr<const core::FrequencyTable>> promise;
  Future future;
  bool build_here = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.cache.find(key);
    if (it == stripe.cache.end()) {
      future = promise.get_future().share();
      stripe.cache.emplace(key, future);
      build_here = true;
    } else {
      future = it->second;
    }
  }
  if (build_here) {
    try {
      // Persistent tier first: a store hit is a load, not a build, so it
      // satisfies every waiter without touching builds_completed.
      std::shared_ptr<const core::FrequencyTable> table =
          try_store_load(key);
      const bool from_store = table != nullptr;
      if (!from_store) {
        table = std::make_shared<const core::FrequencyTable>(builder());
        store_write_through(key, *table);
      }
      promise.set_value(std::move(table));
      if (!from_store) {
        std::lock_guard<std::mutex> lock(stripe.mu);
        ++stripe.builds_completed;
      }
    } catch (...) {
      // Drop the poisoned entry so a later request can retry (a transient
      // failure must not disable this key for the process lifetime);
      // waiters already holding the future still see the exception.
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        stripe.cache.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();  // rethrows the builder's exception for every waiter
}

TableCache::Future TableCache::get_async(const std::string& key,
                                         Builder builder,
                                         util::ThreadPool& pool,
                                         bool* dispatched) {
  if (dispatched != nullptr) *dispatched = false;
  Stripe& stripe = stripe_of(key);
  auto promise = std::make_shared<
      std::promise<std::shared_ptr<const core::FrequencyTable>>>();
  Future future;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.cache.find(key);
    if (it != stripe.cache.end()) return it->second;
    future = promise->get_future().share();
    stripe.cache.emplace(key, future);
  }
  // Persistent tier, consulted synchronously before the pool: a store
  // load is milliseconds (mmap + copy) against seconds of solves, and a
  // warm-restarting session whose future is ready at construction serves
  // zero fallback windows. `*dispatched` stays false — no build ran, so
  // the session must not report a TableBuildInfo.
  if (std::shared_ptr<const core::FrequencyTable> table =
          try_store_load(key)) {
    promise->set_value(std::move(table));
    return future;
  }
  if (dispatched != nullptr) *dispatched = true;
  // The job owns the builder and promise; `this` must outlive the pool
  // (documented on get_async). Same failure contract as the sync path:
  // waiters see the exception, the key becomes retryable. The job may
  // safely capture the stripe reference — stripes are fixed at
  // construction and outlive every pool the cache is used with.
  try {
    pool.post([this, &stripe, key, builder = std::move(builder), promise]() {
      try {
        auto table = std::make_shared<const core::FrequencyTable>(builder());
        store_write_through(key, *table);
        promise->set_value(std::move(table));
        std::lock_guard<std::mutex> lock(stripe.mu);
        ++stripe.builds_completed;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(stripe.mu);
          stripe.cache.erase(key);
        }
        promise->set_exception(std::current_exception());
      }
    });
  } catch (...) {
    // post() itself failed (pool shutting down, allocation): without the
    // job, the promise would die unset and latch broken_promise into the
    // cached future for the process lifetime. Drop the entry so the key
    // stays retryable, then let the caller see the failure.
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.cache.erase(key);
    }
    throw;
  }
  return future;
}

std::size_t TableCache::builds_completed() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->builds_completed;
  }
  return total;
}

void TableCache::attach_store(std::shared_ptr<store::TableStore> store) {
  std::lock_guard<std::mutex> lock(store_mu_);
  store_ = std::move(store);
}

std::shared_ptr<store::TableStore> TableCache::store() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_;
}

std::shared_ptr<const core::FrequencyTable> TableCache::try_store_load(
    const std::string& key) {
  const std::shared_ptr<store::TableStore> store = this->store();
  if (store == nullptr) return nullptr;
  StatusOr<core::FrequencyTable> loaded = store->load(key);
  if (!loaded.ok()) return nullptr;  // miss or invalid artifact: build
  store_hits_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const core::FrequencyTable>(
      std::move(loaded).value());
}

void TableCache::store_write_through(const std::string& key,
                                     const core::FrequencyTable& table) {
  const std::shared_ptr<store::TableStore> store = this->store();
  if (store == nullptr) return;
  // Best-effort: a full disk or revoked permission must not fail the
  // build that produced a perfectly good in-memory table.
  if (store->put(key, table, "written-by = TableCache\n").ok()) {
    store_writes_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- registration --

namespace internal {
Registrar::Registrar(Status status) {
  if (!status.ok()) {
    std::fprintf(stderr, "protemp registry: %s\n", status.to_string().c_str());
    std::abort();  // duplicate registration is a programming error
  }
}
}  // namespace internal

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

Status PolicyRegistry::register_dfs(const std::string& name,
                                    DfsPolicyFactory factory) {
  if (!factory) {
    return Status::invalid_argument("dfs policy '" + name + "': null factory");
  }
  if (!dfs_.emplace(name, std::move(factory)).second) {
    return Status::already_exists("dfs policy '" + name +
                                  "' registered twice");
  }
  return Status();
}

Status PolicyRegistry::register_assignment(const std::string& name,
                                           AssignmentPolicyFactory factory) {
  if (!factory) {
    return Status::invalid_argument("assignment policy '" + name +
                                    "': null factory");
  }
  if (!assignment_.emplace(name, std::move(factory)).second) {
    return Status::already_exists("assignment policy '" + name +
                                  "' registered twice");
  }
  return Status();
}

Status PolicyRegistry::register_platform(const std::string& name,
                                         PlatformFactory factory) {
  if (!factory) {
    return Status::invalid_argument("platform '" + name + "': null factory");
  }
  if (!platforms_.emplace(name, std::move(factory)).second) {
    return Status::already_exists("platform '" + name + "' registered twice");
  }
  return Status();
}

Status PolicyRegistry::register_platform_family(const std::string& prefix,
                                                std::string name_template,
                                                PlatformFamilyFactory factory) {
  if (!factory) {
    return Status::invalid_argument("platform family '" + prefix +
                                    "': null factory");
  }
  if (prefix.empty() || prefix.find(':') != std::string::npos) {
    return Status::invalid_argument("platform family prefix '" + prefix +
                                    "' must be non-empty and ':'-free");
  }
  if (!platform_families_
           .emplace(prefix,
                    PlatformFamily{std::move(name_template),
                                   std::move(factory)})
           .second) {
    return Status::already_exists("platform family '" + prefix +
                                  "' registered twice");
  }
  return Status();
}

namespace {

std::string known_names(const std::vector<std::string>& names) {
  return util::join(names, ", ");
}

}  // namespace

StatusOr<std::unique_ptr<sim::DfsPolicy>> PolicyRegistry::make_dfs(
    const std::string& name, const PolicyContext& context,
    const Options& options) const {
  const auto it = dfs_.find(name);
  if (it == dfs_.end()) {
    return Status::not_found("unknown dfs policy '" + name + "' (known: " +
                             known_names(dfs_names()) + ")");
  }
  if (context.platform == nullptr) {
    return Status::failed_precondition("dfs policy '" + name +
                                       "': PolicyContext has no platform");
  }
  try {
    return it->second(context, options);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument("dfs policy '" + name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::internal("dfs policy '" + name + "': " + e.what());
  }
}

StatusOr<std::unique_ptr<sim::AssignmentPolicy>>
PolicyRegistry::make_assignment(const std::string& name,
                                const Options& options) const {
  const auto it = assignment_.find(name);
  if (it == assignment_.end()) {
    return Status::not_found("unknown assignment policy '" + name +
                             "' (known: " + known_names(assignment_names()) +
                             ")");
  }
  try {
    return it->second(options);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument("assignment policy '" + name +
                                    "': " + e.what());
  } catch (const std::exception& e) {
    return Status::internal("assignment policy '" + name + "': " + e.what());
  }
}

StatusOr<arch::Platform> PolicyRegistry::make_platform(
    const std::string& name, const Options& options) const {
  const auto it = platforms_.find(name);
  if (it == platforms_.end()) {
    // "<prefix>:<params>" dispatches to the prefix's family, which parses
    // the parameter suffix itself.
    const std::size_t colon = name.find(':');
    const auto family = colon == std::string::npos
                            ? platform_families_.end()
                            : platform_families_.find(name.substr(0, colon));
    if (family == platform_families_.end()) {
      return Status::not_found("unknown platform '" + name + "' (known: " +
                               known_names(platform_names()) + ")");
    }
    try {
      return family->second.factory(name, options);
    } catch (const std::invalid_argument& e) {
      return Status::invalid_argument("platform '" + name + "': " + e.what());
    } catch (const std::exception& e) {
      return Status::internal("platform '" + name + "': " + e.what());
    }
  }
  try {
    return it->second(options);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument("platform '" + name + "': " + e.what());
  } catch (const std::exception& e) {
    return Status::internal("platform '" + name + "': " + e.what());
  }
}

bool PolicyRegistry::has_dfs(const std::string& name) const {
  return dfs_.count(name) != 0;
}
bool PolicyRegistry::has_assignment(const std::string& name) const {
  return assignment_.count(name) != 0;
}
bool PolicyRegistry::has_platform(const std::string& name) const {
  if (platforms_.count(name) != 0) return true;
  const std::size_t colon = name.find(':');
  return colon != std::string::npos &&
         platform_families_.count(name.substr(0, colon)) != 0;
}

namespace {
template <typename Map>
std::vector<std::string> keys_of(const Map& map) {
  std::vector<std::string> names;
  names.reserve(map.size());
  for (const auto& [key, value] : map) {
    (void)value;
    names.push_back(key);
  }
  return names;  // std::map iterates sorted
}
}  // namespace

std::vector<std::string> PolicyRegistry::dfs_names() const {
  return keys_of(dfs_);
}
std::vector<std::string> PolicyRegistry::assignment_names() const {
  return keys_of(assignment_);
}
std::vector<std::string> PolicyRegistry::platform_names() const {
  std::vector<std::string> names = keys_of(platforms_);
  for (const auto& [prefix, family] : platform_families_) {
    (void)prefix;
    names.push_back(family.name_template);
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<std::unique_ptr<sim::DfsPolicy>> make_dfs_policy(
    const std::string& name, const PolicyContext& context,
    const Options& options) {
  return PolicyRegistry::instance().make_dfs(name, context, options);
}

StatusOr<std::unique_ptr<sim::AssignmentPolicy>> make_assignment_policy(
    const std::string& name, const Options& options) {
  return PolicyRegistry::instance().make_assignment(name, options);
}

StatusOr<arch::Platform> make_platform(const std::string& name,
                                       const Options& options) {
  return PolicyRegistry::instance().make_platform(name, options);
}

void print_registered_policies(std::ostream& out) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  out << "dfs policies:\n";
  for (const std::string& name : registry.dfs_names()) {
    out << "  " << name << "\n";
  }
  out << "assignment policies:\n";
  for (const std::string& name : registry.assignment_names()) {
    out << "  " << name << "\n";
  }
  out << "platforms:\n";
  for (const std::string& name : registry.platform_names()) {
    out << "  " << name << "\n";
  }
}

// ------------------------------------------------- built-in registrations --
//
// These live here (not next to the policy classes) so that linking any user
// of the api layer always pulls them in, even from a static library where
// unreferenced translation units are dropped.

namespace {

/// Builds the Phase-1 grid for the "pro-temp" table from options, and a
/// cache key that uniquely identifies the resulting table.
using TableGrid = TableGridSpec;

StatusOr<TableGrid> table_grid_from(OptionReader& reader,
                                    const PolicyContext& context) {
  const double tstart_min = reader.get_double("tstart-min", 50.0);
  const double tstart_max =
      reader.get_double("tstart-max", context.optimizer.tmax);
  const double tstart_step = reader.get_double("tstart-step", 5.0);
  const double f_min = reader.get_double("ftarget-min-mhz", 100.0);
  const double f_max = reader.get_double(
      "ftarget-max-mhz", util::to_mhz(context.platform->fmax()));
  const double f_step = reader.get_double("ftarget-step-mhz", 100.0);
  if (tstart_step <= 0.0 || f_step <= 0.0) {
    return Status::invalid_argument("grid steps must be positive");
  }
  if (tstart_max < tstart_min || f_max < f_min) {
    return Status::invalid_argument("grid max must be >= grid min");
  }
  TableGrid grid;
  for (double t = tstart_min; t <= tstart_max + 1e-9; t += tstart_step) {
    grid.tstart.push_back(t);
  }
  for (double f = f_min; f <= f_max + 1e-9; f += f_step) {
    grid.ftarget.push_back(util::mhz(f));
  }
  return grid;
}

}  // namespace

StatusOr<TableGridSpec> table_grid_from_options(const Options& options,
                                                const PolicyContext& context) {
  OptionReader reader(options);
  StatusOr<TableGridSpec> grid = table_grid_from(reader, context);
  if (!grid.ok()) return grid.status();
  if (Status s = reader.finish(); !s.ok()) return s;
  return grid;
}

std::string table_identity_key(const PolicyContext& context,
                               const TableGridSpec& grid) {
  const core::ProTempConfig& c = context.optimizer;
  std::string key = context.platform_key.empty() ? context.platform->name()
                                                 : context.platform_key;
  // warm_start is part of the key: warm and cold builds agree only to the
  // solver tolerance, and table identity must be exact per configuration.
  // The linalg backend is keyed too — its kernels are bitwise-identical by
  // design, but table identity must be exact per *configuration*, not per
  // proof about the configuration.
  key += util::format(
      "|tmax=%.17g|win=%.17g|dt=%.17g|uni=%d|grad=%d|gw=%.17g|stride=%zu"
      "|slack=%.17g|floor=%.17g|budget=%.17g|warm=%d|be=%s",
      c.tmax, c.dfs_period, c.dt, c.uniform_frequency ? 1 : 0,
      c.minimize_gradient ? 1 : 0, c.gradient_weight, c.gradient_step_stride,
      c.constraint_slack, c.sigma_floor,
      c.power_budget_watts.value_or(-1.0), c.warm_start ? 1 : 0,
      linalg::to_string(c.backend));
  for (const double t : grid.tstart) key += util::format("|t%.17g", t);
  for (const double f : grid.ftarget) key += util::format("|f%.17g", f);
  // Heterogeneous per-core physics and per-node ceilings change the table's
  // *contents* (per-core frequency bounds, extra temperature rows), so a
  // het or ceiling-bearing build must never alias a homogeneous one even
  // under an identical platform_key. Segments are appended only when
  // present, keeping every pre-existing homogeneous key byte-identical —
  // and therefore every existing store artifact addressable.
  const arch::Platform& platform = *context.platform;
  if (platform.heterogeneous()) {
    for (std::size_t v = 0; v < platform.num_cores(); ++v) {
      key += util::format("|het%zu=%.17g,%.17g,%.17g,%.17g", v,
                          platform.core_fmax(v), platform.core_pmax_of(v),
                          platform.leakage_scale_of(v),
                          platform.core_tmax(v).value_or(-1.0));
    }
  }
  for (const arch::ThermalCeiling& ceiling : platform.thermal_ceilings()) {
    key += util::format("|ceil=%s:%.17g", ceiling.name.c_str(),
                        ceiling.tmax_celsius);
  }
  for (const auto& [block_name, tmax] : c.node_ceilings) {
    key += util::format("|ctmax=%s:%.17g", block_name.c_str(), tmax);
  }
  return key;
}

namespace {

PROTEMP_REGISTER_DFS_POLICY(
    "no-tc", [](const PolicyContext&, const Options& options)
                 -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::DfsPolicy>(new core::NoTcPolicy());
    });

PROTEMP_REGISTER_DFS_POLICY(
    "basic-dfs", [](const PolicyContext&, const Options& options)
                     -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      core::BasicDfsPolicy::Options opts;
      opts.trip_celsius = reader.get_double("trip", opts.trip_celsius);
      opts.continuous_trip =
          reader.get_bool("continuous-trip", opts.continuous_trip);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::DfsPolicy>(new core::BasicDfsPolicy(opts));
    });

PROTEMP_REGISTER_DFS_POLICY(
    "pro-temp", [](const PolicyContext& context, const Options& options)
                    -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      StatusOr<TableGrid> grid = table_grid_from(reader, context);
      if (!grid.ok()) return grid.status();
      if (Status s = reader.finish(); !s.ok()) return s;

      const std::string key = table_identity_key(context, *grid);

      // The decimation stride serves the same fine-table identity (it is
      // deliberately not part of the key), so a coarse-serving session and
      // a fine-serving one share one cache/store artifact.
      const std::size_t stride = context.optimizer.table_interp_stride;
      if (stride > 1 && context.build_pool != nullptr) {
        return Status::invalid_argument(
            "pro-temp: opt.table_interp_stride > 1 is incompatible with "
            "async table builds (the certified decimation runs at "
            "construction)");
      }
      if (stride > 1 && !(context.frequency_quantum > 0.0)) {
        // Checked before the grid of solves: a misconfigured session must
        // fail in microseconds, not after building the whole table.
        return Status::invalid_argument(
            "pro-temp: opt.table_interp_stride > 1 requires "
            "sim.frequency_quantum > 0 — the certified interpolation "
            "error is checked against the serving quantum");
      }

      if (context.build_pool != nullptr && context.table_cache != nullptr) {
        // Async serving path: never build on the calling thread. The
        // builder captures everything by value (including a copy of the
        // platform — cheap next to a grid of barrier solves) because it
        // outlives this factory call, and possibly the session that
        // dispatched it.
        const AsyncFallback& fallback = context.async_fallback;
        if (fallback.mode == AsyncFallback::Mode::kPreviousTable) {
          if (fallback.previous == nullptr) {
            return Status::invalid_argument(
                "pro-temp async: previous-table fallback requires a table");
          }
          if (fallback.previous->num_cores() !=
              context.platform->num_cores()) {
            return Status::invalid_argument(util::format(
                "pro-temp async: previous table has %zu cores, platform "
                "has %zu",
                fallback.previous->num_cores(),
                context.platform->num_cores()));
          }
        }
        const double trip =
            fallback.trip_celsius.value_or(context.optimizer.tmax);
        auto info = std::make_shared<TableBuildInfo>();
        auto platform = std::make_shared<const arch::Platform>(
            *context.platform);
        bool dispatched = false;
        TableCache::Future future = context.table_cache->get_async(
            key,
            [info, platform, optimizer_config = context.optimizer,
             tstart = grid->tstart, ftarget = grid->ftarget, key]() {
              const auto start = std::chrono::steady_clock::now();
              const core::ProTempOptimizer optimizer(*platform,
                                                     optimizer_config);
              core::FrequencyTable table =
                  core::FrequencyTable::build(optimizer, tstart, ftarget);
              // Filled before the promise is satisfied, so the swapping
              // thread reads it ordered-after this write.
              info->cache_key = key;
              info->wall_seconds = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       start)
                                       .count();
              info->rows = table.rows();
              info->cols = table.cols();
              return table;
            },
            *context.build_pool, &dispatched);
        // Only the dispatching session reports the build (deferred to the
        // hot-swap, on the stepping thread); cache hits never report.
        return std::unique_ptr<sim::DfsPolicy>(new AsyncTablePolicy(
            std::move(future), fallback, trip,
            dispatched ? std::move(info) : nullptr));
      }

      // The builder only runs on a cache miss, so on_table_build reports
      // builds that actually happened, never cache hits.
      const auto build = [&]() {
        const auto start = std::chrono::steady_clock::now();
        const core::ProTempOptimizer optimizer(*context.platform,
                                               context.optimizer);
        core::FrequencyTable table = core::FrequencyTable::build(
            optimizer, grid->tstart, grid->ftarget);
        if (context.on_table_build) {
          TableBuildInfo info;
          info.cache_key = key;
          info.wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          info.rows = table.rows();
          info.cols = table.cols();
          context.on_table_build(info);
        }
        return table;
      };
      core::FrequencyTable table =
          context.table_cache ? *context.table_cache->get_or_build(key, build)
                              : build();
      if (stride > 1) {
        StatusOr<store::InterpolatedTable> interp =
            store::InterpolatedTable::build(table, stride, stride,
                                            context.frequency_quantum);
        if (!interp.ok()) {
          return interp.status().with_context(
              util::format("pro-temp: opt.table_interp_stride=%zu", stride));
        }
        return std::unique_ptr<sim::DfsPolicy>(
            new store::InterpolatedProTempPolicy(std::move(interp).value()));
      }
      return std::unique_ptr<sim::DfsPolicy>(
          new core::ProTempPolicy(std::move(table)));
    });

PROTEMP_REGISTER_DFS_POLICY(
    "pro-temp-online", [](const PolicyContext& context, const Options& options)
                           -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      if (Status s = reader.finish(); !s.ok()) return s;
      auto optimizer = std::make_shared<const core::ProTempOptimizer>(
          *context.platform, context.optimizer);
      return std::unique_ptr<sim::DfsPolicy>(
          new core::OnlineProTempPolicy(std::move(optimizer)));
    });

PROTEMP_REGISTER_DFS_POLICY(
    "integral", [](const PolicyContext& context, const Options& options)
                    -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      core::IntegralDfsPolicy::Options opts;
      // The scenario's thermal limit is the natural regulation target; an
      // explicit dfs.setpoint overrides it (e.g. to regulate with margin).
      opts.setpoint_celsius =
          reader.get_double("setpoint", context.optimizer.tmax);
      opts.gain_per_celsius_second =
          reader.get_double("gain", opts.gain_per_celsius_second);
      opts.adaptive_gain =
          reader.get_bool("adaptive-gain", opts.adaptive_gain);
      if (Status s = reader.finish(); !s.ok()) return s;
      try {
        return std::unique_ptr<sim::DfsPolicy>(
            new core::IntegralDfsPolicy(opts));
      } catch (const std::invalid_argument& e) {
        return Status::invalid_argument(e.what());
      }
    });

PROTEMP_REGISTER_DFS_POLICY(
    "proportional", [](const PolicyContext& context, const Options& options)
                        -> StatusOr<std::unique_ptr<sim::DfsPolicy>> {
      OptionReader reader(options);
      core::ProportionalDfsPolicy::Options opts;
      opts.setpoint_celsius =
          reader.get_double("setpoint", context.optimizer.tmax);
      opts.kp_per_celsius = reader.get_double("kp", opts.kp_per_celsius);
      if (Status s = reader.finish(); !s.ok()) return s;
      try {
        return std::unique_ptr<sim::DfsPolicy>(
            new core::ProportionalDfsPolicy(opts));
      } catch (const std::invalid_argument& e) {
        return Status::invalid_argument(e.what());
      }
    });

PROTEMP_REGISTER_ASSIGNMENT_POLICY(
    "first-idle", [](const Options& options)
                      -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> {
      OptionReader reader(options);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::AssignmentPolicy>(
          new sim::FirstIdleAssignment());
    });

PROTEMP_REGISTER_ASSIGNMENT_POLICY(
    "coolest-first", [](const Options& options)
                         -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> {
      OptionReader reader(options);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::AssignmentPolicy>(
          new sim::CoolestFirstAssignment());
    });

PROTEMP_REGISTER_ASSIGNMENT_POLICY(
    "round-robin", [](const Options& options)
                       -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> {
      OptionReader reader(options);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::AssignmentPolicy>(
          new sim::RoundRobinAssignment());
    });

PROTEMP_REGISTER_ASSIGNMENT_POLICY(
    "random", [](const Options& options)
                  -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> {
      OptionReader reader(options);
      const std::uint64_t seed = reader.get_seed("seed", 1234);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::AssignmentPolicy>(
          new sim::RandomAssignment(seed));
    });

PROTEMP_REGISTER_ASSIGNMENT_POLICY(
    "adaptive-random", [](const Options& options)
                           -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> {
      OptionReader reader(options);
      const std::uint64_t seed = reader.get_seed("seed", 1234);
      const double decay = reader.get_double("history-decay", 0.98);
      const double sharpness = reader.get_double("sharpness", 2.0);
      if (Status s = reader.finish(); !s.ok()) return s;
      return std::unique_ptr<sim::AssignmentPolicy>(
          new sim::AdaptiveRandomAssignment(seed, decay, sharpness));
    });

PROTEMP_REGISTER_PLATFORM_FAMILY(
    "mesh", "mesh:<rows>x<cols>",
    [](const std::string& name,
       const Options& options) -> StatusOr<arch::Platform> {
      const auto dims = arch::parse_mesh_dims(name);
      if (!dims) {
        return Status::invalid_argument(
            "platform '" + name +
            "': expected mesh:<rows>x<cols> with dimensions in [1, 64]");
      }
      OptionReader reader(options);
      arch::MeshConfig config;
      config.rows = dims->first;
      config.cols = dims->second;
      config.core_edge_mm =
          reader.get_double("core-edge-mm", config.core_edge_mm);
      config.fmax_hz = util::mhz(
          reader.get_double("fmax-mhz", util::to_mhz(config.fmax_hz)));
      config.core_pmax_watts =
          reader.get_double("core-pmax", config.core_pmax_watts);
      config.other_power_fraction = reader.get_double(
          "other-power-fraction", config.other_power_fraction);
      config.background_activity_fraction = reader.get_double(
          "background-activity-fraction", config.background_activity_fraction);
      config.power_exponent =
          reader.get_double("power-exponent", config.power_exponent);
      config.idle_fraction =
          reader.get_double("idle-fraction", config.idle_fraction);
      config.ambient_celsius =
          reader.get_double("ambient", config.ambient_celsius);
      if (Status s = reader.finish(); !s.ok()) return s;
      return arch::make_mesh_platform(config);
    });

PROTEMP_REGISTER_PLATFORM_FAMILY(
    "het", "het:<base>[@<count>x<class>+...]",
    [](const std::string& name,
       const Options& options) -> StatusOr<arch::Platform> {
      const auto spec = arch::parse_het_spec(name);
      if (!spec) {
        return Status::invalid_argument(
            "platform '" + name +
            "': expected het:<base>[@<count>x<class>[+<count>x<class>...]] "
            "with distinct class names");
      }
      // Class-prefixed options ("<class>-fmax-scale", ...) are consumed
      // here; everything else forwards verbatim to the base factory, so a
      // het spec can still configure its base (ambient, core-pmax, ...).
      std::vector<arch::HetClassParams> params(spec->groups.size());
      std::set<std::string> consumed;
      for (std::size_t i = 0; i < spec->groups.size(); ++i) {
        const std::string& cls = spec->groups[i].class_name;
        const auto read = [&](const std::string& suffix,
                              double* out) -> Status {
          const std::string key = cls + "-" + suffix;
          const auto it = options.entries().find(key);
          if (it == options.entries().end()) return Status();
          consumed.insert(key);
          try {
            *out = util::parse_double(it->second);
          } catch (const std::exception&) {
            return Status::invalid_argument("option '" + key +
                                            "': expected a number, got '" +
                                            it->second + "'");
          }
          return Status();
        };
        double tmax = 0.0;
        bool has_tmax = false;
        {
          const std::string key = cls + "-tmax";
          if (options.entries().count(key)) has_tmax = true;
        }
        if (Status s = read("fmax-scale", &params[i].fmax_scale); !s.ok()) {
          return s;
        }
        if (Status s = read("pmax-scale", &params[i].pmax_scale); !s.ok()) {
          return s;
        }
        if (Status s = read("leakage-scale", &params[i].leakage_scale);
            !s.ok()) {
          return s;
        }
        if (has_tmax) {
          if (Status s = read("tmax", &tmax); !s.ok()) return s;
          params[i].tmax_celsius = tmax;
        }
      }
      Options base_options;
      for (const auto& [key, value] : options.entries()) {
        if (!consumed.count(key)) base_options.set(key, value);
      }
      StatusOr<arch::Platform> base =
          PolicyRegistry::instance().make_platform(spec->base, base_options);
      if (!base.ok()) {
        return base.status().with_context("het base of '" + name + "'");
      }
      if (!spec->groups.empty()) {
        arch::apply_het_classes(*base, spec->groups, params);
      }
      return base;
    });

PROTEMP_REGISTER_PLATFORM_FAMILY(
    "stack", "stack:<rows>x<cols>[+<k>dram]",
    [](const std::string& name,
       const Options& options) -> StatusOr<arch::Platform> {
      const auto dims = arch::parse_stack_dims(name);
      if (!dims) {
        return Status::invalid_argument(
            "platform '" + name +
            "': expected stack:<rows>x<cols>[+<k>dram] with dimensions in "
            "[1, 64] and <k> in [1, 4]");
      }
      OptionReader reader(options);
      arch::StackConfig config;
      config.rows = dims->rows;
      config.cols = dims->cols;
      config.dram_layers = dims->dram_layers;
      config.core_edge_mm =
          reader.get_double("core-edge-mm", config.core_edge_mm);
      config.fmax_hz = util::mhz(
          reader.get_double("fmax-mhz", util::to_mhz(config.fmax_hz)));
      config.core_pmax_watts =
          reader.get_double("core-pmax", config.core_pmax_watts);
      config.other_power_fraction = reader.get_double(
          "other-power-fraction", config.other_power_fraction);
      config.dram_power_fraction = reader.get_double(
          "dram-power-fraction", config.dram_power_fraction);
      config.dram_tmax_celsius =
          reader.get_double("dram-tmax", config.dram_tmax_celsius);
      config.background_activity_fraction = reader.get_double(
          "background-activity-fraction", config.background_activity_fraction);
      config.power_exponent =
          reader.get_double("power-exponent", config.power_exponent);
      config.idle_fraction =
          reader.get_double("idle-fraction", config.idle_fraction);
      config.ambient_celsius =
          reader.get_double("ambient", config.ambient_celsius);
      if (Status s = reader.finish(); !s.ok()) return s;
      return arch::make_stack_platform(config);
    });

PROTEMP_REGISTER_PLATFORM(
    "niagara8",
    [](const Options& options) -> StatusOr<arch::Platform> {
      OptionReader reader(options);
      arch::NiagaraConfig config;
      config.fmax_hz = util::mhz(
          reader.get_double("fmax-mhz", util::to_mhz(config.fmax_hz)));
      config.core_pmax_watts =
          reader.get_double("core-pmax", config.core_pmax_watts);
      config.other_power_fraction = reader.get_double(
          "other-power-fraction", config.other_power_fraction);
      config.background_activity_fraction = reader.get_double(
          "background-activity-fraction", config.background_activity_fraction);
      config.power_exponent =
          reader.get_double("power-exponent", config.power_exponent);
      config.idle_fraction =
          reader.get_double("idle-fraction", config.idle_fraction);
      config.ambient_celsius =
          reader.get_double("ambient", config.ambient_celsius);
      if (Status s = reader.finish(); !s.ok()) return s;
      return arch::make_niagara_platform(config);
    });

}  // namespace

}  // namespace protemp::api
