// Batched scenario execution — the scale substrate of the facade.
//
// ScenarioRunner turns a declarative ScenarioSpec into one closed-loop
// simulation: a ControlSession built from the spec (platform + policies
// from the registry), a workload from the generator, and a
// MulticoreSimulator driving the session as its controller — the batch
// runner is just one driver of the same session that open-loop telemetry
// callers step directly (see session.hpp). run_all() fans independent
// scenarios across a util::ThreadPool (the same pool primitive the serving
// layer uses for async table builds, see fleet.hpp); because every
// scenario owns its RNG seed and shares no mutable state, a batch produces
// results identical to running each spec sequentially, regardless of
// thread count or scheduling order.
//
// Phase-1 tables (the expensive offline artifact of "pro-temp" policies)
// are memoized in a TableCache keyed on (platform, optimizer config, grid),
// so a parameter sweep that varies only the workload or the seed builds the
// table once, not once per scenario.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/status.hpp"
#include "sim/simulator.hpp"

namespace protemp::api {

struct ScenarioReport {
  ScenarioSpec spec;             ///< the spec that produced this report
  std::string platform_name;     ///< resolved platform display name
  std::string dfs_policy;        ///< resolved policy display names
  std::string assignment_policy;
  std::size_t trace_tasks = 0;   ///< generated workload size
  double offered_utilization = 0.0;
  sim::SimResult result;
  double wall_seconds = 0.0;     ///< host time spent on this scenario
};

class ScenarioRunner {
 public:
  ScenarioRunner() = default;

  /// Runs one scenario start to finish. All failures (bad spec, unknown
  /// names, bad options, inner-layer throws) come back as a Status.
  StatusOr<ScenarioReport> run(const ScenarioSpec& spec) const;

  /// Runs every spec and returns the reports in spec order. `num_threads`
  /// of 0 picks std::thread::hardware_concurrency(). Every scenario runs to
  /// completion regardless of other failures; on failure the returned
  /// Status carries the first failure's code and aggregates EVERY failing
  /// spec's (index, name, status) in its message, so batch users see all
  /// failures at once.
  StatusOr<std::vector<ScenarioReport>> run_all(
      const std::vector<ScenarioSpec>& specs,
      std::size_t num_threads = 0) const;

  /// The shared Phase-1 table cache (exposed for diagnostics/tests).
  /// The runner's Phase-1 table cache. Callers may attach a persistent
  /// store::TableStore tier (TableCache::attach_store) before the first
  /// run so cold starts reuse artifacts built by earlier processes or
  /// tools/tablectl — examples/quickstart --table-store wires exactly
  /// this.
  TableCache& table_cache() const noexcept { return table_cache_; }

 private:
  mutable TableCache table_cache_;
};

}  // namespace protemp::api
