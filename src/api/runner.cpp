#include "api/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>

#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace protemp::api {

namespace {

StatusOr<workload::TaskTrace> make_trace(const ScenarioSpec& spec,
                                         std::size_t cores) {
  StatusOr<std::vector<workload::BenchmarkProfile>> profiles =
      workload_profiles(spec.workload);
  if (!profiles.ok()) return profiles.status();
  workload::GeneratorConfig config;
  config.cores = cores;
  config.duration = spec.duration;
  config.seed = spec.seed;
  return workload::generate_trace(*profiles, config);
}

}  // namespace

StatusOr<ScenarioReport> ScenarioRunner::run(const ScenarioSpec& spec) const {
  const auto start = std::chrono::steady_clock::now();
  if (Status s = spec.validate(); !s.ok()) return s;

  StatusOr<arch::Platform> platform =
      make_platform(spec.platform, spec.platform_options);
  if (!platform.ok()) {
    return platform.status().with_context("scenario '" + spec.name + "'");
  }

  PolicyContext context;
  context.platform = &*platform;
  context.optimizer = spec.optimizer;
  context.table_cache = &table_cache_;
  // Distinct platform options must never share a Phase-1 table, even when
  // the factory gives both platforms the same display name.
  context.platform_key = spec.platform;
  for (const auto& [key, value] : spec.platform_options.entries()) {
    context.platform_key += "|" + key + "=" + value;
  }

  StatusOr<std::unique_ptr<sim::DfsPolicy>> dfs =
      make_dfs_policy(spec.dfs_policy, context, spec.dfs_options);
  if (!dfs.ok()) {
    return dfs.status().with_context("scenario '" + spec.name + "'");
  }
  StatusOr<std::unique_ptr<sim::AssignmentPolicy>> assignment =
      make_assignment_policy(spec.assignment_policy, spec.assignment_options);
  if (!assignment.ok()) {
    return assignment.status().with_context("scenario '" + spec.name + "'");
  }

  try {
    StatusOr<workload::TaskTrace> trace =
        make_trace(spec, platform->num_cores());
    if (!trace.ok()) {
      return trace.status().with_context("scenario '" + spec.name + "'");
    }

    sim::MulticoreSimulator simulator(*platform, spec.sim);
    sim::SimResult result =
        simulator.run(*trace, **dfs, **assignment, spec.duration);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return ScenarioReport{
        spec,
        platform->name(),
        (*dfs)->name(),
        (*assignment)->name(),
        trace->size(),
        trace->offered_utilization(platform->num_cores()),
        std::move(result),
        wall,
    };
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument("scenario '" + spec.name +
                                    "': " + e.what());
  } catch (const std::exception& e) {
    return Status::internal("scenario '" + spec.name + "': " + e.what());
  }
}

StatusOr<std::vector<ScenarioReport>> ScenarioRunner::run_all(
    const std::vector<ScenarioSpec>& specs, std::size_t num_threads) const {
  if (specs.empty()) return std::vector<ScenarioReport>{};
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, specs.size());

  // Workers pull the next unclaimed spec index; scenario results are fully
  // determined by their spec, so claim order does not affect the output.
  std::vector<std::optional<StatusOr<ScenarioReport>>> slots(specs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t index = next.fetch_add(1);
      if (index >= specs.size()) return;
      slots[index] = run(specs[index]);
    }
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) t.join();
  }

  std::vector<ScenarioReport> reports;
  reports.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    StatusOr<ScenarioReport>& slot = *slots[i];
    if (!slot.ok()) {
      return slot.status().with_context("scenario " + std::to_string(i) +
                                        " of " + std::to_string(specs.size()));
    }
    reports.push_back(std::move(slot).value());
  }
  return reports;
}

}  // namespace protemp::api
