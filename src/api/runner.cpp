#include "api/runner.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <optional>
#include <thread>

#include "api/session.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace protemp::api {

namespace {

StatusOr<workload::TaskTrace> make_trace(const ScenarioSpec& spec,
                                         std::size_t cores) {
  StatusOr<std::vector<workload::BenchmarkProfile>> profiles =
      workload_profiles(spec.workload);
  if (!profiles.ok()) return profiles.status();
  workload::GeneratorConfig config;
  config.cores = cores;
  config.duration = spec.duration;
  config.seed = spec.seed;
  return workload::generate_trace(*profiles, config);
}

}  // namespace

StatusOr<ScenarioReport> ScenarioRunner::run(const ScenarioSpec& spec) const {
  const auto start = std::chrono::steady_clock::now();
  if (Status s = spec.validate(); !s.ok()) return s;

  // One session per scenario: it owns the platform, both policies and the
  // warm-start workspace. The simulator below is merely its closed-loop
  // driver — external telemetry drives the very same object via step().
  SessionConfig session_config;
  session_config.table_cache = &table_cache_;
  StatusOr<std::unique_ptr<ControlSession>> session =
      ControlSession::create(spec, session_config);
  if (!session.ok()) {
    return session.status().with_context("scenario '" + spec.name + "'");
  }

  try {
    StatusOr<workload::TaskTrace> trace =
        make_trace(spec, (*session)->num_cores());
    if (!trace.ok()) {
      return trace.status().with_context("scenario '" + spec.name + "'");
    }

    sim::MulticoreSimulator simulator((*session)->platform(), spec.sim);
    sim::SimResult result =
        simulator.run(*trace, **session, spec.duration);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return ScenarioReport{
        spec,
        (*session)->platform().name(),
        (*session)->dfs_policy().name(),
        (*session)->assignment_policy().name(),
        trace->size(),
        trace->offered_utilization((*session)->num_cores()),
        std::move(result),
        wall,
    };
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument("scenario '" + spec.name +
                                    "': " + e.what());
  } catch (const std::exception& e) {
    return Status::internal("scenario '" + spec.name + "': " + e.what());
  }
}

StatusOr<std::vector<ScenarioReport>> ScenarioRunner::run_all(
    const std::vector<ScenarioSpec>& specs, std::size_t num_threads) const {
  if (specs.empty()) return std::vector<ScenarioReport>{};
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, specs.size());

  // One pool job per spec; scenario results are fully determined by their
  // spec, so scheduling order does not affect the output. The pool is the
  // same util::ThreadPool the serving layer uses for async table builds —
  // run_all owns a private one sized to the request.
  std::vector<std::optional<StatusOr<ScenarioReport>>> slots(specs.size());
  {
    util::ThreadPool pool(num_threads);
    std::vector<std::future<void>> done;
    done.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      done.push_back(
          pool.submit([this, &specs, &slots, i]() { slots[i] = run(specs[i]); }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Aggregate EVERY failure (every scenario ran to completion above): batch
  // users get the full damage report in one Status, not just the first hit.
  std::vector<std::string> failures;
  Status first_failure;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const StatusOr<ScenarioReport>& slot = *slots[i];
    if (slot.ok()) continue;
    if (first_failure.ok()) first_failure = slot.status();
    failures.push_back("scenario " + std::to_string(i) + " of " +
                       std::to_string(specs.size()) + " ('" + specs[i].name +
                       "'): " + slot.status().to_string());
  }
  if (!failures.empty()) {
    std::string message =
        std::to_string(failures.size()) + " of " +
        std::to_string(specs.size()) + " scenarios failed: " +
        util::join(failures, "; ");
    return Status(first_failure.code(), std::move(message));
  }

  std::vector<ScenarioReport> reports;
  reports.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    reports.push_back(std::move(*slots[i]).value());
  }
  return reports;
}

}  // namespace protemp::api
