// String-keyed factories for policies and platforms.
//
// Examples, benches and scenario specs never name concrete classes: they ask
// the registry for "pro-temp" / "basic-dfs" / "coolest-first" / "niagara8"
// and pass a flat key/value Options map. Unknown names and malformed or
// unrecognized options surface as api::Status, never as crashes.
//
// Adding a policy is one line in a .cpp file:
//
//   PROTEMP_REGISTER_ASSIGNMENT_POLICY("my-policy", [](const Options& o)
//       -> StatusOr<std::unique_ptr<sim::AssignmentPolicy>> { ... });
//
// The built-in registrations live in registry.cpp (so they are always linked
// in, even from a static library); out-of-tree policies can self-register
// from any translation unit that is linked into the final binary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "arch/platform.hpp"
#include "core/frequency_table.hpp"
#include "core/optimizer.hpp"
#include "sim/policies.hpp"
#include "util/thread_pool.hpp"

namespace protemp::store {
class TableStore;  // persistent tier (src/store/table_store.hpp)
}  // namespace protemp::store

namespace protemp::api {

/// Flat string→string option map. Numeric and boolean values are stored in
/// their text form and parsed by the consuming factory via OptionReader, so
/// options round-trip losslessly through scenario-spec files.
class Options {
 public:
  Options() = default;

  Options& set(const std::string& key, std::string value);
  Options& set(const std::string& key, const char* value);
  Options& set(const std::string& key, double value);
  Options& set(const std::string& key, bool value);

  bool contains(const std::string& key) const;
  bool empty() const noexcept { return values_.empty(); }
  std::size_t size() const noexcept { return values_.size(); }
  const std::map<std::string, std::string>& entries() const noexcept {
    return values_;
  }

  friend bool operator==(const Options&, const Options&) = default;

 private:
  std::map<std::string, std::string> values_;
};

/// Typed, consuming view over an Options map, mirroring util::CliArgs: each
/// get_* declares the key as known; finish() reports the first parse error
/// or any keys the factory never asked about (catches option typos).
class OptionReader {
 public:
  explicit OptionReader(const Options& options);

  std::string get_string(const std::string& key, std::string default_value);
  double get_double(const std::string& key, double default_value);
  long long get_int(const std::string& key, long long default_value);
  bool get_bool(const std::string& key, bool default_value);
  std::uint64_t get_seed(const std::string& key, std::uint64_t default_value);

  /// Ok iff every provided key was consumed and every value parsed.
  Status finish() const;

 private:
  const Options& options_;
  std::map<std::string, bool> consumed_;
  Status first_error_;
};

/// Shares Phase-1 frequency tables between scenarios: building one is a
/// full grid of barrier solves, so ScenarioRunner keys tables on (platform,
/// optimizer config, grid) and builds each distinct table exactly once even
/// when many worker threads request it concurrently. Builder exceptions
/// propagate to every waiter of that key; the failed entry is dropped so a
/// later request can retry.
///
/// Internally the key space is striped: each key hashes to one of `stripes`
/// independent (mutex, map) shards, so concurrent lookups of different keys
/// — a ShardedFleet bringing up hundreds of sessions, a batch runner's
/// worker threads — do not serialize on one cache-wide mutex. Requests for
/// the SAME key still coordinate exactly as before (one build, shared
/// future, poisoned entries dropped): striping changes contention, never
/// semantics.
class TableCache {
 public:
  using Builder = std::function<core::FrequencyTable()>;
  using Future =
      std::shared_future<std::shared_ptr<const core::FrequencyTable>>;

  /// `stripes` fixes the lock granularity for the cache's lifetime (at
  /// least 1; the default comfortably exceeds every in-tree shard count).
  explicit TableCache(std::size_t stripes = 16);

  /// Blocking path (the default everywhere): a miss builds on the calling
  /// thread; concurrent requests for the same key wait for that one build.
  std::shared_ptr<const core::FrequencyTable> get_or_build(
      const std::string& key, const Builder& builder);

  /// Non-blocking path: a miss dispatches `builder` to `pool` and returns
  /// the in-flight future immediately (`*dispatched = true` only for the
  /// caller that scheduled the build); a hit returns the existing —
  /// possibly already ready — future. `ready()` tells a control loop
  /// whether get() would block. The cache must outlive every pool job it
  /// dispatched: drain or destroy the pool before the cache.
  Future get_async(const std::string& key, Builder builder,
                   util::ThreadPool& pool, bool* dispatched = nullptr);
  static bool ready(const Future& future) {
    return future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  /// Completed builds this cache ran (sync or async; failed builds
  /// excluded). A store hit is NOT a build — warm restarts from a
  /// populated store report builds_completed == 0.
  std::size_t builds_completed() const;

  /// Attaches a persistent tier: memory miss -> store lookup (a hit loads
  /// in milliseconds and counts under store_hits, not builds_completed);
  /// builds that do run are written through best-effort (store_writes).
  /// Both the sync and async paths consult the store, so an async session
  /// restarting against a populated store gets a ready future and serves
  /// zero fallback windows. Attach before the first lookup; the store
  /// must outlive the cache's last operation (a shared_ptr is held).
  void attach_store(std::shared_ptr<store::TableStore> store);
  std::shared_ptr<store::TableStore> store() const;
  std::size_t store_hits() const noexcept { return store_hits_; }
  std::size_t store_writes() const noexcept { return store_writes_; }

 private:
  /// One lock domain: every operation on a key touches exactly its
  /// stripe, and the per-stripe build counter is only ever mutated under
  /// that stripe's mutex (builds_completed() sums across stripes).
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, Future> cache;
    std::size_t builds_completed = 0;
  };

  Stripe& stripe_of(const std::string& key);
  /// Store lookup + counters, shared by the sync and async miss paths;
  /// nullptr on miss or when no store is attached.
  std::shared_ptr<const core::FrequencyTable> try_store_load(
      const std::string& key);
  void store_write_through(const std::string& key,
                           const core::FrequencyTable& table);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  mutable std::mutex store_mu_;  ///< guards store_ (counters are atomic)
  std::shared_ptr<store::TableStore> store_;
  std::atomic<std::size_t> store_hits_{0};
  std::atomic<std::size_t> store_writes_{0};
};

/// Describes one Phase-1 table build that actually ran (cache misses only;
/// a cache hit never re-builds and never reports).
struct TableBuildInfo {
  std::string cache_key;      ///< full identity of the built table
  double wall_seconds = 0.0;  ///< host time spent in the grid of solves
  std::size_t rows = 0;       ///< tstart grid points
  std::size_t cols = 0;       ///< ftarget grid points
};

/// What a non-blocking "pro-temp" session serves while its Phase-1 table
/// build is still in flight (the fallback contract of DESIGN.md §6c). Both
/// modes are thermally safe; neither is workload-optimal — the point is
/// that the control loop never waits on the optimizer.
struct AsyncFallback {
  enum class Mode {
    /// Every core runs at fmax; a core observed at/above `trip_celsius`
    /// is dropped to the platform floor (0 Hz unless sim.fmin raises it)
    /// and latched there until the next window boundary re-reads it — the
    /// Basic-DFS continuous-trip semantics, as a reactive governor.
    kTripAtFmax,
    /// Serve lookups from `previous` (e.g. the table of a superseded
    /// configuration) until the fresh build lands.
    kPreviousTable,
  };
  Mode mode = Mode::kTripAtFmax;
  /// Trip threshold [degC] for kTripAtFmax; unset -> ProTempConfig::tmax.
  std::optional<double> trip_celsius;
  /// The stale table served in kPreviousTable mode (required there; its
  /// core count must match the platform).
  std::shared_ptr<const core::FrequencyTable> previous;
};

/// Everything a DfsPolicy factory may need beyond its options: the platform
/// being simulated and the Phase-1 optimizer configuration. `table_cache`
/// (optional) lets ScenarioRunner share identical Phase-1 tables across
/// scenarios instead of re-solving the grid per run.
struct PolicyContext {
  const arch::Platform* platform = nullptr;
  core::ProTempConfig optimizer;
  TableCache* table_cache = nullptr;
  /// Cache-key identity of `platform`. Must differ whenever the platform's
  /// physics differ — ScenarioRunner sets it to the registry name plus every
  /// factory option, so e.g. two niagara8 platforms with different ambients
  /// never share a Phase-1 table. Empty falls back to platform->name().
  std::string platform_key;
  /// Optional observer invoked (on the calling thread) after each Phase-1
  /// table build this construction triggered. ControlSession routes it to
  /// SessionObserver::on_table_build. In async mode (build_pool set) the
  /// report is deferred to the table hot-swap instead, so it still fires on
  /// the stepping thread — see api::AsyncTablePolicy.
  std::function<void(const TableBuildInfo&)> on_table_build;
  /// Non-null (together with table_cache) makes "pro-temp" construction
  /// non-blocking: a cache miss dispatches the Phase-1 build to this pool
  /// and the factory returns an api::AsyncTablePolicy that serves
  /// `async_fallback` until the table lands at a window boundary. Null (the
  /// default) keeps the synchronous build-in-ctor path, byte-identical to
  /// prior behavior.
  util::ThreadPool* build_pool = nullptr;
  AsyncFallback async_fallback;
  /// The serving layer's frequency quantum [Hz] (sim.frequency_quantum).
  /// Consumed by the "pro-temp" factory when opt.table_interp_stride > 1:
  /// the interpolated table's certified error bound must fit under one
  /// quantum, so decimation never changes a post-quantization command by
  /// more than one step. 0 (the default) means continuous frequencies —
  /// interpolated serving is rejected with a named error.
  double frequency_quantum = 0.0;
};

using DfsPolicyFactory =
    std::function<StatusOr<std::unique_ptr<sim::DfsPolicy>>(
        const PolicyContext&, const Options&)>;
using AssignmentPolicyFactory =
    std::function<StatusOr<std::unique_ptr<sim::AssignmentPolicy>>(
        const Options&)>;
using PlatformFactory =
    std::function<StatusOr<arch::Platform>(const Options&)>;
/// Factory of a *parametric* platform family: receives the full requested
/// name (e.g. "mesh:8x8") and parses its parameters from the suffix.
using PlatformFamilyFactory =
    std::function<StatusOr<arch::Platform>(const std::string& name,
                                           const Options&)>;

class PolicyRegistry {
 public:
  /// Process-wide registry instance (built-ins registered on first use).
  static PolicyRegistry& instance();

  Status register_dfs(const std::string& name, DfsPolicyFactory factory);
  Status register_assignment(const std::string& name,
                             AssignmentPolicyFactory factory);
  Status register_platform(const std::string& name, PlatformFactory factory);
  /// Registers a parametric family resolved by prefix: any requested name
  /// of the form "<prefix>:<params>" without an exact-name registration
  /// dispatches to `factory` with the full name. `name_template` is the
  /// human-facing placeholder listed next to the concrete platforms (e.g.
  /// "mesh:<rows>x<cols>"), so --list-policies and not-found messages
  /// advertise the family.
  Status register_platform_family(const std::string& prefix,
                                  std::string name_template,
                                  PlatformFamilyFactory factory);

  StatusOr<std::unique_ptr<sim::DfsPolicy>> make_dfs(
      const std::string& name, const PolicyContext& context,
      const Options& options = {}) const;
  StatusOr<std::unique_ptr<sim::AssignmentPolicy>> make_assignment(
      const std::string& name, const Options& options = {}) const;
  StatusOr<arch::Platform> make_platform(const std::string& name,
                                         const Options& options = {}) const;

  bool has_dfs(const std::string& name) const;
  bool has_assignment(const std::string& name) const;
  /// True for exact platform names and for "<prefix>:<...>" names whose
  /// prefix is a registered family (parameter validation happens at
  /// make_platform time, with a line-of-sight Status).
  bool has_platform(const std::string& name) const;

  /// Sorted names, for --list-policies and error messages. Platform names
  /// include each family's `name_template` placeholder.
  std::vector<std::string> dfs_names() const;
  std::vector<std::string> assignment_names() const;
  std::vector<std::string> platform_names() const;

 private:
  struct PlatformFamily {
    std::string name_template;
    PlatformFamilyFactory factory;
  };

  PolicyRegistry() = default;

  std::map<std::string, DfsPolicyFactory> dfs_;
  std::map<std::string, AssignmentPolicyFactory> assignment_;
  std::map<std::string, PlatformFactory> platforms_;
  std::map<std::string, PlatformFamily> platform_families_;  ///< by prefix
};

/// The Phase-1 grid the "pro-temp" factory derives from its options
/// (tstart-min/max/step, ftarget-min/max/step-mhz), exposed so
/// out-of-band builders (tools/tablectl) derive bit-identical grids —
/// and therefore bit-identical store keys — from the same option names.
struct TableGridSpec {
  std::vector<double> tstart;   ///< [degC]
  std::vector<double> ftarget;  ///< [Hz]
};
StatusOr<TableGridSpec> table_grid_from_options(const Options& options,
                                                const PolicyContext& context);

/// Cache/store identity of a Phase-1 table: platform key + every
/// ProTempConfig field + linalg backend + both grids at full precision.
/// TableCache keys its memory tier and store::TableStore keys its
/// artifacts with this exact string, which is what lets a tablectl-built
/// artifact satisfy a serving session's lookup.
std::string table_identity_key(const PolicyContext& context,
                               const TableGridSpec& grid);

/// Convenience wrappers over PolicyRegistry::instance().
StatusOr<std::unique_ptr<sim::DfsPolicy>> make_dfs_policy(
    const std::string& name, const PolicyContext& context,
    const Options& options = {});
StatusOr<std::unique_ptr<sim::AssignmentPolicy>> make_assignment_policy(
    const std::string& name, const Options& options = {});
StatusOr<arch::Platform> make_platform(const std::string& name,
                                       const Options& options = {});

/// Prints every registered policy and platform name (one block per kind);
/// examples expose this behind `--list-policies`.
void print_registered_policies(std::ostream& out);

namespace internal {
/// Runs a registration at static-initialization time; aborts the process on
/// a duplicate name (a programming error, not a runtime condition).
struct Registrar {
  explicit Registrar(Status status);
};
}  // namespace internal

#define PROTEMP_REGISTRY_CONCAT_INNER(a, b) a##b
#define PROTEMP_REGISTRY_CONCAT(a, b) PROTEMP_REGISTRY_CONCAT_INNER(a, b)

/// Self-registration macros: one line per policy, at namespace scope.
#define PROTEMP_REGISTER_DFS_POLICY(name, factory)                        \
  static const ::protemp::api::internal::Registrar                        \
      PROTEMP_REGISTRY_CONCAT(protemp_dfs_registrar_, __COUNTER__)(       \
          ::protemp::api::PolicyRegistry::instance().register_dfs(        \
              name, factory))
#define PROTEMP_REGISTER_ASSIGNMENT_POLICY(name, factory)                 \
  static const ::protemp::api::internal::Registrar                        \
      PROTEMP_REGISTRY_CONCAT(protemp_assign_registrar_, __COUNTER__)(    \
          ::protemp::api::PolicyRegistry::instance().register_assignment( \
              name, factory))
#define PROTEMP_REGISTER_PLATFORM(name, factory)                          \
  static const ::protemp::api::internal::Registrar                        \
      PROTEMP_REGISTRY_CONCAT(protemp_platform_registrar_, __COUNTER__)(  \
          ::protemp::api::PolicyRegistry::instance().register_platform(   \
              name, factory))
#define PROTEMP_REGISTER_PLATFORM_FAMILY(prefix, name_template, factory)  \
  static const ::protemp::api::internal::Registrar                        \
      PROTEMP_REGISTRY_CONCAT(protemp_platform_family_registrar_,         \
                              __COUNTER__)(                               \
          ::protemp::api::PolicyRegistry::instance()                      \
              .register_platform_family(prefix, name_template, factory))

}  // namespace protemp::api
