// Streaming ControlSession: telemetry-in / actuation-out online control.
//
// The paper's Phase-2 controller is an *online* loop — sensor temperatures
// in, per-core frequencies out, every DFS period. A ControlSession is that
// loop as a facade object: construct it from a ScenarioSpec (or from a
// platform + policies directly), then call step(TelemetryFrame) once per
// sensor sample and read back an ActuationCommand. The session owns the
// platform, both policies, and — through them — the per-instance
// warm-start SolverWorkspace, so successive steps reuse the PR-2 fast path
// exactly as the batch runner does.
//
// Who owns the loop is the caller's choice:
//   * closed loop — MulticoreSimulator drives the session through the
//     sim::Controller interface it implements (ScenarioRunner::run is
//     exactly this, and is bitwise-identical to the historical monolithic
//     simulator loop);
//   * open loop — an external telemetry source (live sensors, a replayed
//     trace) calls step()/assign() itself; no simulator is involved.
//
// snapshot()/restore() checkpoint the full control state (loop cadence,
// policy internals, warm-start memory): restoring and replaying the same
// telemetry reproduces the original actuation stream exactly.
//
// Observer reentrancy rule: SessionObserver callbacks run synchronously
// inside step()/on_telemetry() and must not call back into the session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/async.hpp"
#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/status.hpp"
#include "arch/platform.hpp"
#include "sim/control_loop.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_io.hpp"

namespace protemp::api {

/// The controller's decision for one telemetry frame.
struct ActuationCommand {
  linalg::Vector frequencies;    ///< per-core [Hz], quantized
  bool window_boundary = false;  ///< a DFS-window decision was taken
  bool intervened = false;       ///< sample hook modified frequencies (trip)
  std::size_t step = 0;          ///< 0-based index of the consumed frame
  double time = 0.0;             ///< echo of the frame's timestamp [s]
};

/// Hooks into a session's control flow. All callbacks run synchronously on
/// the stepping thread; implementations must be cheap and must not call
/// back into the session (no reentrancy). Default: ignore everything.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;

  /// After every consumed frame (window boundaries included).
  virtual void on_step(const sim::TelemetryFrame& frame,
                       const ActuationCommand& command) {
    (void)frame;
    (void)command;
  }

  /// After a frame in which the policy's sample-granularity hook modified
  /// the frequencies between windows — a thermal trip.
  virtual void on_trip(const sim::TelemetryFrame& frame,
                       const ActuationCommand& command) {
    (void)frame;
    (void)command;
  }

  /// After a Phase-1 table build triggered by session construction (cache
  /// misses only; fired during create(), so the observer must be
  /// registered through SessionConfig to see it).
  virtual void on_table_build(const TableBuildInfo& info) { (void)info; }
};

/// Construction-time wiring of a session.
struct SessionConfig {
  /// Optional shared Phase-1 table cache (ScenarioRunner passes its own, so
  /// sessions built from the same runner share tables).
  TableCache* table_cache = nullptr;
  /// Non-null (together with table_cache) makes table-backed policy
  /// construction non-blocking: create() returns immediately, the Phase-1
  /// build runs on this pool, and step() serves `async_fallback` until the
  /// table hot-swaps in at a window boundary (DESIGN.md §6c). Not owned;
  /// pool and cache must outlive the session.
  util::ThreadPool* build_pool = nullptr;
  /// What to serve while an async build is in flight.
  AsyncFallback async_fallback;
  /// Observers active from the first moment of construction — the only way
  /// to see on_table_build. Not owned; must outlive the session (or be
  /// removed first).
  std::vector<SessionObserver*> observers;
};

/// Opaque checkpoint of a session's full control state. Treat the contents
/// as private; they are only meaningful to ControlSession::restore on a
/// session with the same platform and policy types.
struct SessionSnapshot {
  sim::ControlLoop::Checkpoint checkpoint;
  std::size_t num_cores = 0;
};

class ControlSession final : public sim::Controller {
 public:
  /// Builds platform and policies from the spec's registry names, exactly
  /// as ScenarioRunner does (spec.duration/workload/seed are ignored — the
  /// session has no workload; telemetry is the caller's).
  static StatusOr<std::unique_ptr<ControlSession>> create(
      const ScenarioSpec& spec, const SessionConfig& config = {});

  /// Direct construction from already-built parts. The session takes
  /// ownership of all three; `sim_config` supplies the control cadence
  /// (dt, dfs_period), the frequency quantum and tmax.
  static StatusOr<std::unique_ptr<ControlSession>> create(
      arch::Platform platform, std::unique_ptr<sim::DfsPolicy> dfs,
      std::unique_ptr<sim::AssignmentPolicy> assignment,
      sim::SimConfig sim_config, const SessionConfig& config = {});

  // -- streaming (open-loop) interface ------------------------------------

  /// Consumes one telemetry frame — call once per sensor sample, in time
  /// order (frame.time must be non-decreasing). The frame's workload and
  /// block-sensor fields are only read when next_step_is_window_boundary()
  /// is true. All failures (bad frame shape, policy throws) come back as a
  /// Status; the session state is unchanged on a rejected frame.
  StatusOr<ActuationCommand> step(const sim::TelemetryFrame& frame);

  /// Task-placement query: picks one of ctx.idle_cores. The open-loop twin
  /// of the simulator's assignment path.
  StatusOr<std::size_t> assign(const sim::AssignmentContext& ctx);

  // -- checkpointing ------------------------------------------------------

  SessionSnapshot snapshot() const;
  /// Restores a snapshot taken from this session (or one with identical
  /// platform and policy types). On failure the session is unchanged.
  Status restore(const SessionSnapshot& snapshot);

  /// Blocks until this session's Phase-1 table build resolves and swaps it
  /// in; no-op in sync mode or once the table is live. A failed build comes
  /// back as a Status (and every later call returns it again — the future
  /// is latched). Must be called on the stepping thread: a deferred
  /// on_table_build observer callback fires here, exactly as it would at
  /// the swapping window boundary. Used for migration — restoring a
  /// live-phase snapshot requires the target's table live first
  /// (DESIGN.md §6d).
  Status wait_table_ready();

  // -- observers ----------------------------------------------------------

  void add_observer(SessionObserver* observer);
  void remove_observer(SessionObserver* observer);

  // -- introspection ------------------------------------------------------

  std::size_t steps() const noexcept { return loop_->steps(); }
  std::size_t windows() const noexcept { return loop_->windows(); }
  /// Whether this session's Phase-1 table build is still in flight (async
  /// mode only; always false for synchronously built sessions). While
  /// true, window decisions come from the configured AsyncFallback.
  bool table_build_pending() const noexcept;
  /// DFS windows served by the fallback so far (0 in sync mode).
  std::size_t fallback_windows() const noexcept;
  /// Whether the next step() consumes the frame's workload/block-sensor
  /// fields (i.e. falls on a DFS-window boundary).
  bool next_step_is_window_boundary() const noexcept {
    return loop_->next_step_is_window_boundary();
  }
  std::size_t num_cores() const noexcept { return platform_->num_cores(); }
  const arch::Platform& platform() const noexcept { return *platform_; }
  const sim::SimConfig& sim_config() const noexcept { return sim_config_; }
  const sim::DfsPolicy& dfs_policy() const noexcept { return *dfs_; }
  sim::DfsPolicy& dfs_policy() noexcept { return *dfs_; }
  /// The dfs policy's solver workspace when it owns one (online MPC
  /// policies), else nullptr: warm-start counters, Newton totals and
  /// fixed-budget expiry counts for stats reporting.
  const convex::SolverWorkspace* solver_workspace() const noexcept {
    return dfs_->solver_workspace();
  }
  const sim::AssignmentPolicy& assignment_policy() const noexcept {
    return *assignment_;
  }
  /// The command produced by the most recent step (zeros before the first).
  const ActuationCommand& last_command() const noexcept {
    return last_command_;
  }

  // -- sim::Controller — the closed-loop driver interface -----------------
  //
  // MulticoreSimulator::run(trace, session, duration) drives these; they
  // are the exception-based core that step()/assign() wrap with Status.
  // Observers fire here, so closed-loop runs get the same hooks.

  void reset() override;
  const linalg::Vector& on_telemetry(const sim::TelemetryFrame& frame) override;
  std::size_t pick_core(const sim::AssignmentContext& ctx) override;

 private:
  ControlSession(std::unique_ptr<arch::Platform> platform,
                 std::unique_ptr<sim::DfsPolicy> dfs,
                 std::unique_ptr<sim::AssignmentPolicy> assignment,
                 sim::SimConfig sim_config,
                 std::vector<SessionObserver*> observers);

  Status validate_frame(const sim::TelemetryFrame& frame) const;
  /// Points an AsyncTablePolicy's swap callback at this session's observer
  /// list, so deferred on_table_build fires on the stepping thread.
  void wire_async_policy();

  std::unique_ptr<arch::Platform> platform_;  ///< stable address (optimizer refs)
  sim::SimConfig sim_config_;
  std::unique_ptr<sim::DfsPolicy> dfs_;
  std::unique_ptr<sim::AssignmentPolicy> assignment_;
  std::unique_ptr<sim::ControlLoop> loop_;
  AsyncTablePolicy* async_policy_ = nullptr;  ///< dfs_, when async-built
  std::vector<SessionObserver*> observers_;
  ActuationCommand last_command_;
  double last_time_ = 0.0;
  bool any_step_ = false;
};

// ------------------------------------------------------ telemetry replay --

/// Summary of one open-loop replay.
struct ReplayReport {
  std::size_t frames = 0;
  std::size_t windows = 0;
  std::size_t interventions = 0;  ///< frames with a thermal trip
  double mean_frequency = 0.0;    ///< frame-average of the per-core mean [Hz]
  double max_core_temp = 0.0;     ///< hottest telemetry reading seen [degC]
  linalg::Vector final_frequencies;
};

/// Drives `session` from a recorded telemetry trace (workload::trace_io
/// CSV format) with no simulator in the loop: one step() per record, in
/// order. Stops at the first rejected frame, anchored with its index.
StatusOr<ReplayReport> replay_telemetry(
    ControlSession& session, const workload::TelemetryTrace& trace);

// -------------------------------------------------- record / replay soak --

/// Folds one actuation command into a streaming FNV-1a digest: the raw
/// bits of every frequency, plus the window/intervention flags. Two
/// command streams agree bitwise iff their digests (seeded identically,
/// e.g. util::fnv1a64("")) agree — the cheap equality check the
/// record/replay soak gates on.
std::uint64_t digest_command(std::uint64_t digest,
                             const ActuationCommand& command) noexcept;

/// Observer that digests the command stream (see digest_command). Attach
/// to a replaying session and compare against the digest captured from the
/// live run.
class CommandDigestObserver final : public SessionObserver {
 public:
  void on_step(const sim::TelemetryFrame& frame,
               const ActuationCommand& command) override;

  std::uint64_t digest() const noexcept { return digest_; }
  std::size_t commands() const noexcept { return commands_; }

 private:
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  ///< FNV offset basis
  std::size_t commands_ = 0;
};

/// Observer that captures the telemetry a session consumes (as
/// workload::TelemetryRecords, block sensors included) together with the
/// command-stream digest. Saving the trace, reloading it and replaying it
/// through a freshly created session must reproduce the digest bitwise —
/// that is the telemetry record/replay contract (DESIGN.md §8).
class TelemetryRecorder final : public SessionObserver {
 public:
  void on_step(const sim::TelemetryFrame& frame,
               const ActuationCommand& command) override;

  const workload::TelemetryTrace& trace() const noexcept { return trace_; }
  workload::TelemetryTrace take_trace() { return std::move(trace_); }
  std::uint64_t command_digest() const noexcept { return digest_; }
  void reset();

 private:
  workload::TelemetryTrace trace_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
};

/// Structured metrics accumulation over a session's step stream — the
/// observer replacement for ad-hoc result bookkeeping in open-loop mode.
/// Temperatures come from telemetry (there is no ground truth in open
/// loop) and power is unknown, so energy stays zero; everything else of
/// sim::Metrics (band residency, violation fractions, spatial gradient,
/// peaks) is filled per step.
class MetricsSink final : public SessionObserver {
 public:
  /// `dt` is the telemetry cadence used to weight each step.
  MetricsSink(std::size_t num_cores, std::vector<double> band_edges,
              double tmax, double dt);
  /// Convenience: cadence, band edges and tmax from the session's config.
  explicit MetricsSink(const ControlSession& session);

  void on_step(const sim::TelemetryFrame& frame,
               const ActuationCommand& command) override;
  void on_trip(const sim::TelemetryFrame& frame,
               const ActuationCommand& command) override;

  const sim::Metrics& metrics() const noexcept { return metrics_; }
  std::size_t steps() const noexcept { return steps_; }
  std::size_t windows() const noexcept { return windows_; }
  std::size_t trips() const noexcept { return trips_; }
  /// Time-average of the per-core mean commanded frequency [Hz].
  double mean_frequency() const;

 private:
  sim::Metrics metrics_;
  double dt_;
  std::size_t steps_ = 0;
  std::size_t windows_ = 0;
  std::size_t trips_ = 0;
  double freq_integral_ = 0.0;  ///< sum over steps of per-core mean * dt
};

}  // namespace protemp::api
