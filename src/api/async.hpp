// Non-blocking Phase-1 table acquisition for the serving layer.
//
// The paper's controller precomputes its frequency table offline; the
// online loop must never pay that cost inside a control step. When a
// session is created in async mode (SessionConfig::build_pool set), the
// "pro-temp" factory dispatches the table build to the pool and returns an
// AsyncTablePolicy immediately. Until the build lands, every DFS window is
// served by the configured AsyncFallback (thermal-trip-at-fmax, or a
// previous table); the first window boundary at which the future is ready
// hot-swaps the real ProTempPolicy in and — if this policy's construction
// dispatched the build — reports it through the swap callback, which
// ControlSession routes to SessionObserver::on_table_build on the stepping
// thread (preserving the observer threading contract even though the build
// itself ran on a pool worker).
//
// The full fallback chain is cache -> store -> AsyncFallback: when the
// TableCache has a store::TableStore attached and the key is on disk,
// get_async returns an already-ready future (a mmap load, not a build),
// so the session swaps its real table in at the first window boundary and
// serves zero fallback windows — the warm-restart path. Only a true miss
// pays fallback windows while the grid of solves runs on the pool.
//
// Failure contract: if the builder threw, the swap attempt rethrows from
// on_window, so the owning session's step() returns a Status at that
// window boundary (and every later one — the shared future is latched).
// Siblings sharing the cache but not that key are unaffected;
// api::SessionFleet additionally latches the failed session so one bad
// build never stalls the fleet.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "core/policies.hpp"
#include "sim/policies.hpp"

namespace protemp::api {

class AsyncTablePolicy final : public sim::DfsPolicy {
 public:
  /// `future` resolves to the Phase-1 table (or the builder's exception).
  /// `trip_celsius` is the resolved kTripAtFmax threshold. `build_info` is
  /// non-null iff this construction dispatched the build; the builder
  /// fills it before the future becomes ready (the promise publication
  /// orders the write), and the swap reports it through the swap callback.
  AsyncTablePolicy(TableCache::Future future, AsyncFallback fallback,
                   double trip_celsius,
                   std::shared_ptr<const TableBuildInfo> build_info);

  /// The policy *is* pro-temp; asynchronous acquisition is a serving
  /// detail, not a different control law.
  std::string name() const override { return "pro-temp"; }

  void reset() override;
  linalg::Vector on_window(const sim::ControllerView& view) override;
  bool on_sample(double time, const linalg::Vector& core_temps,
                 linalg::Vector& frequencies) override;
  std::any save_state() const override;
  void load_state(const std::any& state) override;

  /// True until the built table has been swapped in (stays true after a
  /// failed build — the failure surfaces through on_window instead).
  bool pending() const noexcept { return live_ == nullptr; }
  /// Windows served by the fallback so far (monotone; survives the swap).
  std::size_t fallback_windows() const noexcept { return fallback_windows_; }
  /// The swapped-in policy; nullptr while pending.
  const core::ProTempPolicy* live() const noexcept { return live_.get(); }

  /// Invoked (on the stepping thread, inside the swapping on_window) when
  /// the hot-swap lands *and* this policy dispatched the build.
  /// ControlSession points this at its observer list.
  void set_swap_callback(std::function<void(const TableBuildInfo&)> callback) {
    swap_callback_ = std::move(callback);
  }

  /// Blocks until the build future resolves, then swaps the table in.
  /// Rethrows the builder's exception if the build failed. Must be called
  /// on the stepping thread (the swap callback fires here, like it would
  /// from on_window). Intended for bring-up and migration, where the
  /// caller needs the policy live *now* rather than at the next window
  /// boundary — e.g. restoring a live-phase snapshot into a fresh session.
  void wait_ready_and_swap();

 private:
  /// Swaps the built table in if the future is ready; rethrows the
  /// builder's exception if the build failed.
  void try_swap();

  TableCache::Future future_;
  AsyncFallback fallback_;
  double trip_celsius_;
  std::shared_ptr<const TableBuildInfo> build_info_;
  std::function<void(const TableBuildInfo&)> swap_callback_;
  std::unique_ptr<core::ProTempPolicy> previous_;  ///< kPreviousTable mode
  std::unique_ptr<core::ProTempPolicy> live_;
  std::size_t fallback_windows_ = 0;
  /// Per-core trip latches of the kTripAtFmax fallback, re-derived at
  /// every boundary (Basic-DFS semantics): a latched core stays at the
  /// floor for the rest of the window and does not re-report.
  std::vector<bool> tripped_;
};

}  // namespace protemp::api
