// Declarative scenarios: everything needed to reproduce one closed-loop run
// as a value type, parseable from (and serializable to) a simple
// `key = value` text format.
//
// A ScenarioSpec bundles the platform choice, the simulator and optimizer
// configurations, the workload-generator parameters, the policy names and
// their options, the duration and the RNG seed. Because a spec fully owns
// its randomness, two runs of the same spec are bit-identical no matter
// where or on which thread they execute — the property ScenarioRunner's
// batching relies on.
//
// Text format: one `key = value` per line; lines whose first non-space
// character is `#` are comments (inline `# ...` after a value is NOT
// supported — values may contain `#`); blank lines ignored. Policy and
// platform options use dotted keys (`dfs.trip = 92`). Parse errors and
// unknown keys are reported with the offending line number. See DESIGN.md
// for the full key list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "api/registry.hpp"
#include "api/status.hpp"
#include "core/optimizer.hpp"
#include "sim/simulator.hpp"
#include "workload/profiles.hpp"

namespace protemp::api {

/// Profile set for a workload name; kNotFound (listing the known names)
/// otherwise. The single source of truth shared by ScenarioSpec::validate
/// and ScenarioRunner, so the two can never drift apart.
StatusOr<std::vector<workload::BenchmarkProfile>> workload_profiles(
    const std::string& name);
/// Sorted names accepted by workload_profiles().
std::vector<std::string> workload_names();

struct ScenarioSpec {
  std::string name = "scenario";

  /// Registry name of the platform plus its factory options.
  std::string platform = "niagara8";
  Options platform_options;

  /// Workload-generator selection: "mixed", "compute", "high-load" or
  /// "web" (the profile sets of workload/profiles.hpp). The generator runs
  /// at `duration` seconds with `seed`, sized to the platform's core count.
  std::string workload = "mixed";
  double duration = 30.0;
  std::uint64_t seed = 2008;

  sim::SimConfig sim;
  core::ProTempConfig optimizer;

  std::string dfs_policy = "pro-temp";
  Options dfs_options;
  std::string assignment_policy = "first-idle";
  Options assignment_options;

  /// Semantic checks (positive durations, known registry names, known
  /// workload, increasing band edges, ...). Parse() already enforces
  /// syntactic validity; run() calls validate() before doing any work.
  Status validate() const;

  /// Canonical text form; parse(serialize()) reproduces the spec exactly
  /// (doubles are emitted with round-trip precision). Every field has a
  /// text form, including the `core_leakage` extension
  /// (`sim.core_leakage.{nominal,sensitivity,ref_celsius}`).
  std::string serialize() const;

  static StatusOr<ScenarioSpec> parse(std::string_view text);
  static StatusOr<ScenarioSpec> load_file(const std::string& path);
  Status save_file(const std::string& path) const;
};

}  // namespace protemp::api
