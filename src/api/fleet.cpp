#include "api/fleet.hpp"

#include <string>
#include <utility>

#include "util/strings.hpp"

namespace protemp::api {

SessionFleet::SessionFleet(FleetConfig config)
    : config_(config), pool_(config.build_threads) {}

StatusOr<std::unique_ptr<SessionFleet>> SessionFleet::create(
    const std::vector<ScenarioSpec>& specs, FleetConfig config) {
  auto fleet = std::make_unique<SessionFleet>(config);
  std::vector<std::string> failures;
  Status first_failure;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    StatusOr<std::size_t> added = fleet->add(specs[i]);
    if (added.ok()) continue;
    if (first_failure.ok()) first_failure = added.status();
    failures.push_back("session " + std::to_string(i) + " of " +
                       std::to_string(specs.size()) + " ('" + specs[i].name +
                       "'): " + added.status().to_string());
  }
  if (!failures.empty()) {
    return Status(first_failure.code(),
                  std::to_string(failures.size()) + " of " +
                      std::to_string(specs.size()) +
                      " sessions failed to build: " +
                      util::join(failures, "; "));
  }
  return fleet;
}

StatusOr<std::size_t> SessionFleet::add(const ScenarioSpec& spec) {
  SessionConfig session_config;
  session_config.table_cache = &cache_;
  if (config_.async_builds) {
    session_config.build_pool = &pool_;
    session_config.async_fallback = config_.fallback;
  }
  StatusOr<std::unique_ptr<ControlSession>> session =
      ControlSession::create(spec, session_config);
  if (!session.ok()) return session.status();
  return adopt(std::move(session).value());
}

std::size_t SessionFleet::adopt(std::unique_ptr<ControlSession> session) {
  Entry entry;
  entry.session = std::move(session);
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

std::vector<StatusOr<ActuationCommand>> SessionFleet::step_all(
    const std::vector<sim::TelemetryFrame>& frames) {
  std::vector<StatusOr<ActuationCommand>> results;
  results.reserve(entries_.size());
  if (frames.size() != entries_.size()) {
    const Status mismatch = Status::invalid_argument(
        "step_all: " + std::to_string(frames.size()) + " frames for " +
        std::to_string(entries_.size()) + " sessions");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      results.push_back(mismatch);
    }
    return results;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (!entry.status.ok()) {
      // Latched: a failed session is isolated, not retried — its siblings
      // (and its slot's diagnostics) are what matter now.
      results.push_back(entry.status);
      continue;
    }
    StatusOr<ActuationCommand> command = entry.session->step(frames[i]);
    if (!command.ok()) {
      entry.status = command.status().with_context(
          "fleet session " + std::to_string(i));
      results.push_back(entry.status);
      continue;
    }
    if (command->intervened) ++entry.trips;
    results.push_back(std::move(command));
  }
  return results;
}

bool SessionFleet::any_build_pending() const {
  for (const Entry& entry : entries_) {
    if (entry.status.ok() && entry.session->table_build_pending()) {
      return true;
    }
  }
  return false;
}

FleetMetrics SessionFleet::metrics() const {
  FleetMetrics out;
  out.sessions = entries_.size();
  out.builds_completed = cache_.builds_completed();
  for (const Entry& entry : entries_) {
    if (!entry.status.ok()) ++out.failed;
    if (entry.status.ok() && entry.session->table_build_pending()) {
      ++out.builds_pending;
    }
    out.steps += entry.session->steps();
    out.windows += entry.session->windows();
    out.fallback_windows += entry.session->fallback_windows();
    out.trips += entry.trips;
  }
  return out;
}

}  // namespace protemp::api
