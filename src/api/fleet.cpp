#include "api/fleet.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/strings.hpp"

namespace protemp::api {

SessionFleet::SessionFleet(FleetConfig config)
    : config_(config), pool_(config.build_threads) {
  if (config_.table_store != nullptr) {
    cache_.attach_store(config_.table_store);
  }
}

StatusOr<std::unique_ptr<SessionFleet>> SessionFleet::create(
    const std::vector<ScenarioSpec>& specs, FleetConfig config) {
  auto fleet = std::make_unique<SessionFleet>(config);
  std::vector<std::string> failures;
  Status first_failure;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    StatusOr<std::size_t> added = fleet->add_session(specs[i]);
    if (added.ok()) continue;
    if (first_failure.ok()) first_failure = added.status();
    failures.push_back("session " + std::to_string(i) + " of " +
                       std::to_string(specs.size()) + " ('" + specs[i].name +
                       "'): " + added.status().to_string());
  }
  if (!failures.empty()) {
    return Status(first_failure.code(),
                  std::to_string(failures.size()) + " of " +
                      std::to_string(specs.size()) +
                      " sessions failed to build: " +
                      util::join(failures, "; "));
  }
  return fleet;
}

StatusOr<std::size_t> SessionFleet::add_session(const ScenarioSpec& spec) {
  SessionConfig session_config;
  session_config.table_cache = &cache_;
  if (config_.async_builds) {
    session_config.build_pool = &pool_;
    session_config.async_fallback = config_.fallback;
  }
  StatusOr<std::unique_ptr<ControlSession>> session =
      ControlSession::create(spec, session_config);
  if (!session.ok()) return session.status();
  return adopt(std::move(session).value());
}

std::size_t SessionFleet::claim_slot() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].session == nullptr) return i;
  }
  entries_.emplace_back();
  return entries_.size() - 1;
}

std::size_t SessionFleet::adopt(std::unique_ptr<ControlSession> session) {
  const std::size_t slot = claim_slot();
  Entry& entry = entries_[slot];
  entry.session = std::move(session);
  entry.status = Status();  // a reused slot starts with a clean latch
  entry.trips = 0;
  return slot;
}

Status SessionFleet::remove_session(std::size_t index) {
  if (index >= entries_.size() || entries_[index].session == nullptr) {
    return Status::not_found("fleet slot " + std::to_string(index) +
                             " is empty");
  }
  entries_[index] = Entry{};
  return Status();
}

std::size_t SessionFleet::sessions() const noexcept {
  std::size_t occupied = 0;
  for (const Entry& entry : entries_) {
    if (entry.session != nullptr) ++occupied;
  }
  return occupied;
}

StatusOr<ActuationCommand> SessionFleet::step_one(
    std::size_t index, const sim::TelemetryFrame& frame) {
  if (index >= entries_.size() || entries_[index].session == nullptr) {
    return Status::not_found("fleet slot " + std::to_string(index) +
                             " is empty");
  }
  Entry& entry = entries_[index];
  if (!entry.status.ok()) {
    // Latched: a failed session is isolated, not retried — its siblings
    // (and its slot's diagnostics) are what matter now.
    return entry.status;
  }
  StatusOr<ActuationCommand> command = entry.session->step(frame);
  if (!command.ok()) {
    entry.status =
        command.status().with_context("fleet session " + std::to_string(index));
    return entry.status;
  }
  if (command->intervened) ++entry.trips;
  return command;
}

std::vector<StatusOr<ActuationCommand>> SessionFleet::step_all(
    const std::vector<sim::TelemetryFrame>& frames) {
  std::vector<StatusOr<ActuationCommand>> results;
  results.reserve(entries_.size());
  if (frames.size() != entries_.size()) {
    const Status mismatch = Status::invalid_argument(
        "step_all: " + std::to_string(frames.size()) + " frames for " +
        std::to_string(entries_.size()) + " slots");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      results.push_back(mismatch);
    }
    return results;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    results.push_back(step_one(i, frames[i]));
  }
  return results;
}

bool SessionFleet::any_build_pending() const {
  for (const Entry& entry : entries_) {
    if (entry.session != nullptr && entry.status.ok() &&
        entry.session->table_build_pending()) {
      return true;
    }
  }
  return false;
}

FleetMetrics SessionFleet::metrics() const {
  FleetMetrics out;
  out.builds_completed = cache_.builds_completed();
  for (const Entry& entry : entries_) {
    if (entry.session == nullptr) continue;
    ++out.sessions;
    if (!entry.status.ok()) ++out.failed;
    if (entry.status.ok() && entry.session->table_build_pending()) {
      ++out.builds_pending;
    }
    out.steps += entry.session->steps();
    out.windows += entry.session->windows();
    out.fallback_windows += entry.session->fallback_windows();
    out.trips += entry.trips;
  }
  return out;
}

// ------------------------------------------------------------ ShardedFleet --

ShardedFleet::ShardedFleet(ShardedFleetConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  FleetConfig fleet_config;
  fleet_config.build_threads = std::max<std::size_t>(
      config_.build_threads_per_shard, 1);
  fleet_config.async_builds = config_.async_builds;
  fleet_config.fallback = config_.fallback;
  fleet_config.table_store = config_.table_store;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(fleet_config));
  }
}

StatusOr<SessionId> ShardedFleet::add(const ScenarioSpec& spec) {
  // fnv1a64 (not std::hash) so a session's home shard is stable across
  // runs and standard libraries — placement is part of reproducibility.
  return add_on(spec, util::fnv1a64(spec.name) % shards_.size());
}

StatusOr<SessionId> ShardedFleet::add(const ScenarioSpec& spec,
                                      std::size_t shard) {
  if (shard >= shards_.size()) {
    return Status::invalid_argument(
        "add: shard " + std::to_string(shard) + " out of range (" +
        std::to_string(shards_.size()) + " shards)");
  }
  return add_on(spec, shard);
}

StatusOr<SessionId> ShardedFleet::add_on(const ScenarioSpec& spec,
                                         std::size_t shard) {
  // Id allocation and placement happen before the shard does any work, so
  // the lock order (placement -> shard) holds; on failure the placement
  // entry is rolled back.
  SessionId id = 0;
  {
    std::unique_lock<std::shared_mutex> lock(placement_mu_);
    id = next_id_++;
    placement_.emplace(id, shard);
  }
  Shard& target = *shards_[shard];
  Status failure;
  {
    std::lock_guard<std::mutex> lock(target.mu);
    StatusOr<std::size_t> slot = target.fleet.add_session(spec);
    if (slot.ok()) {
      target.slots.emplace(id, slot.value());
      target.specs.emplace(id, spec);
      return id;
    }
    failure = slot.status();
  }
  std::unique_lock<std::shared_mutex> lock(placement_mu_);
  placement_.erase(id);
  return failure;
}

StatusOr<std::size_t> ShardedFleet::placement_of(SessionId id) const {
  std::shared_lock<std::shared_mutex> lock(placement_mu_);
  auto it = placement_.find(id);
  if (it == placement_.end()) {
    return Status::not_found("session id " + std::to_string(id));
  }
  return it->second;
}

StatusOr<std::size_t> ShardedFleet::shard_of(SessionId id) const {
  return placement_of(id);
}

Status ShardedFleet::remove(SessionId id) {
  // Exclusive placement lock for the whole removal: nothing can re-route
  // the id mid-removal, and the (placement -> shard) lock order holds.
  std::unique_lock<std::shared_mutex> lock(placement_mu_);
  auto it = placement_.find(id);
  if (it == placement_.end()) {
    return Status::not_found("session id " + std::to_string(id));
  }
  Shard& shard = *shards_[it->second];
  {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    auto slot = shard.slots.find(id);
    if (slot != shard.slots.end()) {
      (void)shard.fleet.remove_session(slot->second);
      shard.slots.erase(slot);
      shard.specs.erase(id);
    }
  }
  placement_.erase(it);
  return Status();
}

StatusOr<ActuationCommand> ShardedFleet::step(SessionId id,
                                              const sim::TelemetryFrame& frame) {
  // Two-phase lookup: placement under the shared lock, then the shard.
  // Between the two the session may migrate away; one retry covers that
  // (the no-step-while-migrating contract makes even the retry a
  // belt-and-braces measure).
  for (int attempt = 0; attempt < 2; ++attempt) {
    StatusOr<std::size_t> shard_index = placement_of(id);
    if (!shard_index.ok()) return shard_index.status();
    Shard& shard = *shards_[shard_index.value()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto slot = shard.slots.find(id);
    if (slot == shard.slots.end()) continue;  // moved between the locks
    return shard.fleet.step_one(slot->second, frame);
  }
  return Status::not_found("session id " + std::to_string(id) +
                           " (moved or removed)");
}

std::vector<StatusOr<ActuationCommand>> ShardedFleet::step_shard(
    std::size_t shard_index,
    const std::vector<std::pair<SessionId, sim::TelemetryFrame>>& batch) {
  std::vector<StatusOr<ActuationCommand>> results;
  results.reserve(batch.size());
  if (shard_index >= shards_.size()) {
    const Status bad = Status::invalid_argument(
        "step_shard: shard " + std::to_string(shard_index) + " out of range");
    for (std::size_t i = 0; i < batch.size(); ++i) results.push_back(bad);
    return results;
  }
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [id, frame] : batch) {
    auto slot = shard.slots.find(id);
    if (slot == shard.slots.end()) {
      results.push_back(Status::failed_precondition(
          "session id " + std::to_string(id) + " is not on shard " +
          std::to_string(shard_index)));
      continue;
    }
    results.push_back(shard.fleet.step_one(slot->second, frame));
  }
  return results;
}

StatusOr<SessionSnapshot> ShardedFleet::snapshot(SessionId id) const {
  StatusOr<std::size_t> shard_index = placement_of(id);
  if (!shard_index.ok()) return shard_index.status();
  const Shard& shard = *shards_[shard_index.value()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto slot = shard.slots.find(id);
  if (slot == shard.slots.end()) {
    return Status::not_found("session id " + std::to_string(id));
  }
  return shard.fleet.session(slot->second).snapshot();
}

Status ShardedFleet::restore(SessionId id, const SessionSnapshot& snapshot) {
  StatusOr<std::size_t> shard_index = placement_of(id);
  if (!shard_index.ok()) return shard_index.status();
  Shard& shard = *shards_[shard_index.value()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto slot = shard.slots.find(id);
  if (slot == shard.slots.end()) {
    return Status::not_found("session id " + std::to_string(id));
  }
  return shard.fleet.session(slot->second).restore(snapshot);
}

Status ShardedFleet::migrate(SessionId id, std::size_t target_shard) {
  if (target_shard >= shards_.size()) {
    return Status::invalid_argument(
        "migrate: shard " + std::to_string(target_shard) + " out of range (" +
        std::to_string(shards_.size()) + " shards)");
  }
  StatusOr<std::size_t> source_index = placement_of(id);
  if (!source_index.ok()) return source_index.status();
  if (source_index.value() == target_shard) return Status();  // already there

  Shard& source = *shards_[source_index.value()];
  Shard& target = *shards_[target_shard];

  // Phase 1 — read the source (spec, snapshot, async phase) under its
  // lock. The caller's no-concurrent-step contract makes this state final
  // until commit; at most one shard lock is held at any point below.
  ScenarioSpec spec;
  SessionSnapshot state;
  bool source_live = false;
  std::size_t source_slot = 0;
  {
    std::lock_guard<std::mutex> lock(source.mu);
    auto slot = source.slots.find(id);
    if (slot == source.slots.end()) {
      return Status::not_found("session id " + std::to_string(id));
    }
    const Status& latched = source.fleet.session_status(slot->second);
    if (!latched.ok()) {
      return Status::failed_precondition(
          "migrate: session id " + std::to_string(id) +
          " is latched failed: " + latched.to_string());
    }
    source_slot = slot->second;
    spec = source.specs.at(id);
    const ControlSession& session = source.fleet.session(source_slot);
    source_live = !session.table_build_pending();
    state = session.snapshot();
  }

  // Phase 2 — build the twin on the target shard. Until commit the id is
  // not placed there, so the new slot is unreachable from step/remove and
  // can safely be brought up outside the shard lock.
  std::size_t target_slot = 0;
  ControlSession* twin = nullptr;
  {
    std::lock_guard<std::mutex> lock(target.mu);
    StatusOr<std::size_t> added = target.fleet.add_session(spec);
    if (!added.ok()) {
      return added.status().with_context("migrate: target build");
    }
    target_slot = added.value();
    twin = &target.fleet.session(target_slot);
  }
  const auto roll_back = [&] {
    std::lock_guard<std::mutex> lock(target.mu);
    (void)target.fleet.remove_session(target_slot);
  };

  // Phase 3 — match async phases, then restore. A live source snapshot has
  // table state the twin can only accept once its own build landed
  // (per-shard caches don't share tables); a pending source restores into
  // the pending twin directly.
  if (source_live) {
    if (Status s = twin->wait_table_ready(); !s.ok()) {
      roll_back();
      return s.with_context("migrate: target table");
    }
  }
  if (Status s = twin->restore(state); !s.ok()) {
    roll_back();
    return s.with_context("migrate: restore");
  }

  // Phase 4 — commit: re-point placement, then free the source slot. Lock
  // order is placement -> shard throughout.
  {
    std::unique_lock<std::shared_mutex> placement_lock(placement_mu_);
    placement_[id] = target_shard;
    {
      std::lock_guard<std::mutex> lock(target.mu);
      target.slots[id] = target_slot;
      target.specs[id] = spec;
      ++target.migrations_in;
    }
    {
      std::lock_guard<std::mutex> lock(source.mu);
      (void)source.fleet.remove_session(source_slot);
      source.slots.erase(id);
      source.specs.erase(id);
      ++source.migrations_out;
    }
  }
  return Status();
}

std::size_t ShardedFleet::sessions_on(std::size_t shard) const {
  if (shard >= shards_.size()) return 0;
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->fleet.sessions();
}

std::size_t ShardedFleet::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->fleet.sessions();
  }
  return total;
}

std::size_t ShardedFleet::migrations() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->migrations_in;
  }
  return total;
}

ShardMetrics ShardedFleet::shard_metrics(std::size_t shard) const {
  ShardMetrics out;
  if (shard >= shards_.size()) return out;
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  out.fleet = s.fleet.metrics();
  out.migrations_in = s.migrations_in;
  out.migrations_out = s.migrations_out;
  return out;
}

FleetMetrics ShardedFleet::metrics() const {
  FleetMetrics out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const FleetMetrics shard = shard_metrics(i).fleet;
    out.sessions += shard.sessions;
    out.failed += shard.failed;
    out.builds_pending += shard.builds_pending;
    out.builds_completed += shard.builds_completed;
    out.steps += shard.steps;
    out.windows += shard.windows;
    out.fallback_windows += shard.fallback_windows;
    out.trips += shard.trips;
  }
  return out;
}

}  // namespace protemp::api
