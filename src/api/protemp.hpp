// Umbrella header of the protemp::api facade — the single supported entry
// point for examples, benches, tools and embedders.
//
//   #include "api/protemp.hpp"
//
//   protemp::api::ScenarioSpec spec;        // declarative scenario
//   spec.workload = "compute";
//   spec.dfs_policy = "pro-temp";           // policies by registry name
//   protemp::api::ScenarioRunner runner;
//   auto report = runner.run(spec);         // StatusOr<ScenarioReport>
//   if (!report.ok()) { /* one error model */ }
//
// The facade layers:
//   * status.hpp   — Status / StatusOr<T>, the unified error model;
//   * registry.hpp — policies and platforms by string name + Options map;
//   * scenario.hpp — ScenarioSpec, parse/serialize/validate;
//   * session.hpp  — ControlSession: streaming telemetry-in/actuation-out
//                    online control, observers, snapshot/restore, replay;
//   * async.hpp    — AsyncTablePolicy: non-blocking Phase-1 acquisition
//                    (fallback serving + window-boundary hot swap);
//   * fleet.hpp    — SessionFleet: N sessions behind one table cache and
//                    build pool, batched step_all, failure isolation;
//   * runner.hpp   — ScenarioRunner::run / run_all (thread-pooled batches,
//                    each scenario a simulator-driven session).
//
// It also re-exports the supporting vocabulary types a facade user touches
// (Platform, SimConfig/SimResult/Metrics, workload generation, the thermal
// substrate, and the util helpers used by every example) so that a typical
// program needs exactly one include.
#pragma once

#include "api/async.hpp"      // IWYU pragma: export
#include "api/fleet.hpp"      // IWYU pragma: export
#include "api/registry.hpp"   // IWYU pragma: export
#include "api/runner.hpp"     // IWYU pragma: export
#include "api/scenario.hpp"   // IWYU pragma: export
#include "api/session.hpp"    // IWYU pragma: export
#include "api/status.hpp"     // IWYU pragma: export

#include "arch/platform.hpp"        // IWYU pragma: export
#include "convex/workspace.hpp"     // IWYU pragma: export
#include "core/frequency_table.hpp" // IWYU pragma: export
#include "power/power_model.hpp"    // IWYU pragma: export
#include "sim/control_loop.hpp"     // IWYU pragma: export
#include "sim/metrics.hpp"          // IWYU pragma: export
#include "sim/simulator.hpp"        // IWYU pragma: export
#include "thermal/floorplan.hpp"    // IWYU pragma: export
#include "thermal/rc_network.hpp"   // IWYU pragma: export
#include "thermal/transient.hpp"    // IWYU pragma: export
#include "workload/generator.hpp"   // IWYU pragma: export
#include "workload/profiles.hpp"    // IWYU pragma: export
#include "workload/task.hpp"        // IWYU pragma: export
#include "workload/trace_io.hpp"    // IWYU pragma: export

#include "util/cli.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "util/strings.hpp"      // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
#include "util/thread_pool.hpp"  // IWYU pragma: export
#include "util/units.hpp"        // IWYU pragma: export
