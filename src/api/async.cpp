#include "api/async.hpp"

#include <stdexcept>
#include <utility>

namespace protemp::api {

AsyncTablePolicy::AsyncTablePolicy(
    TableCache::Future future, AsyncFallback fallback, double trip_celsius,
    std::shared_ptr<const TableBuildInfo> build_info)
    : future_(std::move(future)),
      fallback_(std::move(fallback)),
      trip_celsius_(trip_celsius),
      build_info_(std::move(build_info)) {
  if (!future_.valid()) {
    throw std::invalid_argument("AsyncTablePolicy: invalid future");
  }
  if (fallback_.mode == AsyncFallback::Mode::kPreviousTable) {
    if (fallback_.previous == nullptr) {
      throw std::invalid_argument(
          "AsyncTablePolicy: previous-table fallback requires a table");
    }
    previous_ = std::make_unique<core::ProTempPolicy>(*fallback_.previous);
  }
}

void AsyncTablePolicy::reset() {
  // A reset starts a fresh run, not a fresh build: a swapped-in table
  // stays swapped in.
  fallback_windows_ = 0;
  tripped_.clear();
  if (live_) live_->reset();
  if (previous_) previous_->reset();
}

void AsyncTablePolicy::wait_ready_and_swap() {
  if (live_ != nullptr) return;
  future_.wait();
  try_swap();  // rethrows the builder's exception on a failed build
}

void AsyncTablePolicy::try_swap() {
  if (!TableCache::ready(future_)) return;
  // get() rethrows the builder's exception; the caller's step() turns it
  // into a Status and the session stays in fallback (pending) forever.
  const std::shared_ptr<const core::FrequencyTable> table = future_.get();
  live_ = std::make_unique<core::ProTempPolicy>(*table);
  if (build_info_ && swap_callback_) swap_callback_(*build_info_);
}

linalg::Vector AsyncTablePolicy::on_window(const sim::ControllerView& view) {
  if (live_ == nullptr) try_swap();  // hot-swap only at window boundaries
  if (live_ != nullptr) return live_->on_window(view);

  ++fallback_windows_;
  if (previous_) return previous_->on_window(view);
  // Trip-at-fmax: full speed, except cores observed at/above the trip,
  // which latch shut for the window (the Basic-DFS continuous-trip
  // semantics; the latch — not the commanded value, which an fmin rail
  // may lift off 0 — is what keeps a persistently hot core from
  // re-reporting a trip every sample).
  tripped_.assign(view.num_cores, false);
  linalg::Vector frequencies(view.num_cores);
  for (std::size_t c = 0; c < view.num_cores; ++c) {
    tripped_[c] = view.core_temps[c] >= trip_celsius_;
    frequencies[c] = tripped_[c] ? 0.0 : view.fmax;
  }
  return frequencies;
}

bool AsyncTablePolicy::on_sample(double time,
                                 const linalg::Vector& core_temps,
                                 linalg::Vector& frequencies) {
  if (live_ != nullptr) return live_->on_sample(time, core_temps, frequencies);
  if (previous_) return previous_->on_sample(time, core_temps, frequencies);
  // Continuous trip protection while serving the fmax fallback: the table
  // whose guarantee would make this unnecessary is exactly what is still
  // being built. Only newly tripped cores count as an intervention.
  if (tripped_.size() < core_temps.size()) {
    tripped_.resize(core_temps.size(), false);
  }
  bool intervened = false;
  for (std::size_t c = 0; c < core_temps.size() && c < frequencies.size();
       ++c) {
    if (!tripped_[c] && core_temps[c] >= trip_celsius_) {
      tripped_[c] = true;
      frequencies[c] = 0.0;
      intervened = true;
    }
  }
  return intervened;
}

namespace {
struct AsyncSnapshot {
  bool live = false;
  std::any inner;  ///< live policy state (or fallback policy state)
  std::size_t fallback_windows = 0;
  std::vector<bool> tripped;  ///< fallback trip latches
};
}  // namespace

std::any AsyncTablePolicy::save_state() const {
  AsyncSnapshot snapshot;
  snapshot.live = live_ != nullptr;
  if (live_) {
    snapshot.inner = live_->save_state();
  } else if (previous_) {
    snapshot.inner = previous_->save_state();
  }
  snapshot.fallback_windows = fallback_windows_;
  snapshot.tripped = tripped_;
  return snapshot;
}

void AsyncTablePolicy::load_state(const std::any& state) {
  const auto& snapshot =
      sim::policy_state_as<AsyncSnapshot>(state, "AsyncTablePolicy");
  // Liveness must match: a snapshot taken while pending has no table state
  // to restore into a live policy (and vice versa).
  if (snapshot.live != (live_ != nullptr)) {
    throw std::invalid_argument(
        "AsyncTablePolicy: snapshot build phase (pending/live) does not "
        "match this session's");
  }
  if (live_) {
    live_->load_state(snapshot.inner);
  } else if (previous_) {
    previous_->load_state(snapshot.inner);
  }
  fallback_windows_ = snapshot.fallback_windows;
  tripped_ = snapshot.tripped;
}

}  // namespace protemp::api
