#include "api/session.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <utility>

#include "util/strings.hpp"

namespace protemp::api {

// ---------------------------------------------------------- construction --

ControlSession::ControlSession(std::unique_ptr<arch::Platform> platform,
                               std::unique_ptr<sim::DfsPolicy> dfs,
                               std::unique_ptr<sim::AssignmentPolicy> assignment,
                               sim::SimConfig sim_config,
                               std::vector<SessionObserver*> observers)
    : platform_(std::move(platform)),
      sim_config_(std::move(sim_config)),
      dfs_(std::move(dfs)),
      assignment_(std::move(assignment)),
      observers_(std::move(observers)) {
  sim::ControlLoop::Config loop_config;
  loop_config.dt = sim_config_.dt;
  loop_config.dfs_period = sim_config_.dfs_period;
  loop_config.frequency_quantum = sim_config_.frequency_quantum;
  loop_config.fmin = sim_config_.fmin;
  loop_config.fmax = platform_->fmax();
  loop_config.num_cores = platform_->num_cores();
  if (platform_->heterogeneous()) {
    loop_config.core_fmax.resize(platform_->num_cores());
    for (std::size_t c = 0; c < platform_->num_cores(); ++c) {
      loop_config.core_fmax[c] = platform_->core_fmax(c);
    }
  }
  loop_ = std::make_unique<sim::ControlLoop>(*dfs_, *assignment_, loop_config);
  last_command_.frequencies = linalg::Vector(platform_->num_cores());
}

StatusOr<std::unique_ptr<ControlSession>> ControlSession::create(
    const ScenarioSpec& spec, const SessionConfig& config) {
  if (Status s = spec.validate(); !s.ok()) return s;

  StatusOr<arch::Platform> platform =
      make_platform(spec.platform, spec.platform_options);
  if (!platform.ok()) return platform.status();
  // Heap-owned before policy construction: ProTempOptimizer (and therefore
  // the online policy) keeps a reference to the platform, so its address
  // must be the one the session will own.
  auto owned_platform =
      std::make_unique<arch::Platform>(std::move(platform).value());

  PolicyContext context;
  context.platform = owned_platform.get();
  context.optimizer = spec.optimizer;
  context.table_cache = config.table_cache;
  context.build_pool = config.build_pool;
  context.async_fallback = config.async_fallback;
  context.frequency_quantum = spec.sim.frequency_quantum;
  // Distinct platform options must never share a Phase-1 table, even when
  // the factory gives both platforms the same display name.
  context.platform_key = spec.platform;
  for (const auto& [key, value] : spec.platform_options.entries()) {
    context.platform_key += "|" + key + "=" + value;
  }
  const std::vector<SessionObserver*>& observers = config.observers;
  context.on_table_build = [&observers](const TableBuildInfo& info) {
    for (SessionObserver* observer : observers) {
      observer->on_table_build(info);
    }
  };

  StatusOr<std::unique_ptr<sim::DfsPolicy>> dfs =
      make_dfs_policy(spec.dfs_policy, context, spec.dfs_options);
  if (!dfs.ok()) return dfs.status();
  StatusOr<std::unique_ptr<sim::AssignmentPolicy>> assignment =
      make_assignment_policy(spec.assignment_policy, spec.assignment_options);
  if (!assignment.ok()) return assignment.status();

  try {
    std::unique_ptr<ControlSession> session(new ControlSession(
        std::move(owned_platform), std::move(dfs).value(),
        std::move(assignment).value(), spec.sim, config.observers));
    session->wire_async_policy();
    return session;
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  }
}

StatusOr<std::unique_ptr<ControlSession>> ControlSession::create(
    arch::Platform platform, std::unique_ptr<sim::DfsPolicy> dfs,
    std::unique_ptr<sim::AssignmentPolicy> assignment,
    sim::SimConfig sim_config, const SessionConfig& config) {
  if (dfs == nullptr || assignment == nullptr) {
    return Status::invalid_argument("ControlSession: null policy");
  }
  try {
    std::unique_ptr<ControlSession> session(new ControlSession(
        std::make_unique<arch::Platform>(std::move(platform)), std::move(dfs),
        std::move(assignment), std::move(sim_config), config.observers));
    session->wire_async_policy();
    return session;
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  }
}

void ControlSession::wire_async_policy() {
  async_policy_ = dynamic_cast<AsyncTablePolicy*>(dfs_.get());
  if (async_policy_ == nullptr) return;
  // `this` outlives the policy it owns, and the callback fires inside
  // on_window on the stepping thread — the normal observer context.
  async_policy_->set_swap_callback([this](const TableBuildInfo& info) {
    for (SessionObserver* observer : observers_) {
      observer->on_table_build(info);
    }
  });
}

bool ControlSession::table_build_pending() const noexcept {
  return async_policy_ != nullptr && async_policy_->pending();
}

std::size_t ControlSession::fallback_windows() const noexcept {
  return async_policy_ == nullptr ? 0 : async_policy_->fallback_windows();
}

Status ControlSession::wait_table_ready() {
  if (async_policy_ == nullptr || !async_policy_->pending()) return Status();
  try {
    // The swap may fire the deferred on_table_build callback, which
    // wire_async_policy routed to this session's observers — on this
    // thread, exactly as the swapping window boundary would.
    async_policy_->wait_ready_and_swap();
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(std::string("table build: ") + e.what());
  } catch (const std::exception& e) {
    return Status::internal(std::string("table build: ") + e.what());
  }
  return Status();
}

// ----------------------------------------------- Controller (closed loop) --

void ControlSession::reset() {
  loop_->reset();
  last_command_ = ActuationCommand{};
  last_command_.frequencies = linalg::Vector(platform_->num_cores());
  last_time_ = 0.0;
  any_step_ = false;
}

const linalg::Vector& ControlSession::on_telemetry(
    const sim::TelemetryFrame& frame) {
  const linalg::Vector& frequencies = loop_->on_telemetry(frame);
  last_command_.frequencies = frequencies;
  last_command_.window_boundary = loop_->last_step_was_window();
  last_command_.intervened = loop_->last_step_intervened();
  last_command_.step = loop_->steps() - 1;
  last_command_.time = frame.time;
  last_time_ = frame.time;
  any_step_ = true;
  for (SessionObserver* observer : observers_) {
    observer->on_step(frame, last_command_);
  }
  if (last_command_.intervened) {
    for (SessionObserver* observer : observers_) {
      observer->on_trip(frame, last_command_);
    }
  }
  return frequencies;
}

std::size_t ControlSession::pick_core(const sim::AssignmentContext& ctx) {
  return loop_->pick_core(ctx);
}

// ------------------------------------------------- streaming (open loop) --

Status ControlSession::validate_frame(const sim::TelemetryFrame& frame) const {
  if (!std::isfinite(frame.time)) {
    return Status::invalid_argument("telemetry frame: non-finite time");
  }
  if (any_step_ && frame.time < last_time_) {
    return Status::invalid_argument(
        "telemetry frame: time went backwards (" +
        std::to_string(frame.time) + " after " + std::to_string(last_time_) +
        ")");
  }
  if (frame.core_temps.size() != platform_->num_cores()) {
    return Status::invalid_argument(
        "telemetry frame: expected " +
        std::to_string(platform_->num_cores()) + " core temperatures, got " +
        std::to_string(frame.core_temps.size()));
  }
  if (!frame.sensor_temps.empty() &&
      frame.sensor_temps.size() > platform_->num_nodes()) {
    return Status::invalid_argument(
        "telemetry frame: more sensor readings (" +
        std::to_string(frame.sensor_temps.size()) + ") than platform nodes (" +
        std::to_string(platform_->num_nodes()) + ")");
  }
  return Status();
}

StatusOr<ActuationCommand> ControlSession::step(
    const sim::TelemetryFrame& frame) {
  if (Status s = validate_frame(frame); !s.ok()) return s;
  try {
    on_telemetry(frame);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  }
  return last_command_;
}

StatusOr<std::size_t> ControlSession::assign(
    const sim::AssignmentContext& ctx) {
  if (ctx.idle_cores.empty()) {
    return Status::invalid_argument("assignment query: no idle cores");
  }
  for (const std::size_t c : ctx.idle_cores) {
    if (c >= platform_->num_cores()) {
      return Status::invalid_argument(
          "assignment query: idle core " + std::to_string(c) +
          " out of range (platform has " +
          std::to_string(platform_->num_cores()) + " cores)");
    }
  }
  try {
    return pick_core(ctx);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  }
}

// ---------------------------------------------------------- checkpointing --

SessionSnapshot ControlSession::snapshot() const {
  SessionSnapshot out;
  out.checkpoint = loop_->checkpoint();
  out.num_cores = platform_->num_cores();
  return out;
}

Status ControlSession::restore(const SessionSnapshot& snapshot) {
  if (snapshot.num_cores != platform_->num_cores()) {
    return Status::invalid_argument(
        "session restore: snapshot is for " +
        std::to_string(snapshot.num_cores) + " cores, session has " +
        std::to_string(platform_->num_cores()));
  }
  try {
    loop_->restore(snapshot.checkpoint);
  } catch (const std::invalid_argument& e) {
    return Status::invalid_argument(std::string("session restore: ") +
                                    e.what());
  } catch (const std::exception& e) {
    return Status::internal(std::string("session restore: ") + e.what());
  }
  // The restored command/time mirror the checkpointed loop state; a replay
  // from here continues as the original run did.
  last_command_ = ActuationCommand{};
  last_command_.frequencies = loop_->frequencies();
  last_command_.window_boundary = loop_->last_step_was_window();
  last_command_.intervened = loop_->last_step_intervened();
  last_command_.step = loop_->steps() == 0 ? 0 : loop_->steps() - 1;
  any_step_ = loop_->steps() > 0;
  // Time monotonicity cannot be reconstructed from the checkpoint; accept
  // whatever the replayed telemetry supplies next.
  last_time_ = 0.0;
  return Status();
}

// -------------------------------------------------------------- observers --

void ControlSession::add_observer(SessionObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) ==
      observers_.end()) {
    observers_.push_back(observer);
  }
}

void ControlSession::remove_observer(SessionObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

// ------------------------------------------------------- telemetry replay --

StatusOr<ReplayReport> replay_telemetry(
    ControlSession& session, const workload::TelemetryTrace& trace) {
  ReplayReport report;
  report.final_frequencies = linalg::Vector(session.num_cores());
  double freq_sum = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const workload::TelemetryRecord& record = trace[i];
    sim::TelemetryFrame frame;
    frame.time = record.time;
    frame.core_temps = linalg::Vector(record.core_temps.size());
    for (std::size_t c = 0; c < record.core_temps.size(); ++c) {
      frame.core_temps[c] = record.core_temps[c];
    }
    frame.queue_length = record.queue_length;
    frame.backlog_work = record.backlog_work;
    frame.arrived_work_last_window = record.arrived_work_last_window;
    if (!record.sensor_temps.empty()) {
      frame.sensor_temps = linalg::Vector(record.sensor_temps.size());
      for (std::size_t s = 0; s < record.sensor_temps.size(); ++s) {
        frame.sensor_temps[s] = record.sensor_temps[s];
      }
    }

    StatusOr<ActuationCommand> command = session.step(frame);
    if (!command.ok()) {
      return command.status().with_context("telemetry frame " +
                                           std::to_string(i));
    }
    ++report.frames;
    if (command->window_boundary) ++report.windows;
    if (command->intervened) ++report.interventions;
    double mean = 0.0;
    for (std::size_t c = 0; c < command->frequencies.size(); ++c) {
      mean += command->frequencies[c];
    }
    mean /= static_cast<double>(command->frequencies.size());
    freq_sum += mean;
    if (!frame.core_temps.empty()) {
      report.max_core_temp =
          std::max(report.max_core_temp, frame.core_temps.max());
    }
    report.final_frequencies = std::move(command).value().frequencies;
  }
  if (report.frames > 0) {
    report.mean_frequency = freq_sum / static_cast<double>(report.frames);
  }
  return report;
}

// -------------------------------------------------- record / replay soak --

std::uint64_t digest_command(std::uint64_t digest,
                             const ActuationCommand& command) noexcept {
  for (std::size_t c = 0; c < command.frequencies.size(); ++c) {
    const double f = command.frequencies[c];
    digest = util::fnv1a64(&f, sizeof(f), digest);
  }
  const unsigned char flags =
      static_cast<unsigned char>((command.window_boundary ? 1u : 0u) |
                                 (command.intervened ? 2u : 0u));
  return util::fnv1a64(&flags, sizeof(flags), digest);
}

void CommandDigestObserver::on_step(const sim::TelemetryFrame& frame,
                                    const ActuationCommand& command) {
  (void)frame;
  digest_ = digest_command(digest_, command);
  ++commands_;
}

void TelemetryRecorder::on_step(const sim::TelemetryFrame& frame,
                                const ActuationCommand& command) {
  workload::TelemetryRecord record;
  record.time = frame.time;
  record.core_temps.reserve(frame.core_temps.size());
  for (std::size_t c = 0; c < frame.core_temps.size(); ++c) {
    record.core_temps.push_back(frame.core_temps[c]);
  }
  record.sensor_temps.reserve(frame.sensor_temps.size());
  for (std::size_t s = 0; s < frame.sensor_temps.size(); ++s) {
    record.sensor_temps.push_back(frame.sensor_temps[s]);
  }
  record.queue_length = frame.queue_length;
  record.backlog_work = frame.backlog_work;
  record.arrived_work_last_window = frame.arrived_work_last_window;
  trace_.push_back(std::move(record));
  digest_ = digest_command(digest_, command);
}

void TelemetryRecorder::reset() {
  trace_.clear();
  digest_ = 0xcbf29ce484222325ull;
}

// ------------------------------------------------------------ MetricsSink --

MetricsSink::MetricsSink(std::size_t num_cores,
                         std::vector<double> band_edges, double tmax,
                         double dt)
    : metrics_(num_cores, std::move(band_edges), tmax), dt_(dt) {}

MetricsSink::MetricsSink(const ControlSession& session)
    : MetricsSink(session.num_cores(), session.sim_config().band_edges,
                  session.sim_config().tmax, session.sim_config().dt) {}

void MetricsSink::on_step(const sim::TelemetryFrame& frame,
                          const ActuationCommand& command) {
  ++steps_;
  if (command.window_boundary) ++windows_;
  // Power is unknown in open loop; energy stays zero.
  metrics_.record_step(dt_, frame.core_temps, 0.0);
  double mean = 0.0;
  for (std::size_t c = 0; c < command.frequencies.size(); ++c) {
    mean += command.frequencies[c];
  }
  if (command.frequencies.size() > 0) {
    mean /= static_cast<double>(command.frequencies.size());
  }
  freq_integral_ += mean * dt_;
}

void MetricsSink::on_trip(const sim::TelemetryFrame& frame,
                          const ActuationCommand& command) {
  (void)frame;
  (void)command;
  ++trips_;
}

double MetricsSink::mean_frequency() const {
  const double elapsed = static_cast<double>(steps_) * dt_;
  return elapsed > 0.0 ? freq_integral_ / elapsed : 0.0;
}

}  // namespace protemp::api
