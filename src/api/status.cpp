#include "api/status.hpp"

namespace protemp::api {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::with_context(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

}  // namespace protemp::api
