#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace protemp::thermal {

linalg::Vector TransientSimulator::run(linalg::Vector t,
                                       const linalg::Vector& p,
                                       std::size_t steps) const {
  linalg::Vector next;
  for (std::size_t k = 0; k < steps; ++k) {
    step_into(t, p, next);
    std::swap(t, next);
  }
  return t;
}

EulerSimulator::EulerSimulator(const RcNetwork& network, double dt,
                               linalg::MatrixBackend backend)
    : dt_(dt) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("EulerSimulator: dt must be positive");
  }
  // Probe the stability limit (min_i C_i / G_ii, same formula ThermalModel
  // enforces) straight off the network's diagonals, then build the model
  // at a stable substep — no throwaway probe model.
  double limit = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < network.num_nodes(); ++i) {
    const double gii = network.conductance()(i, i);
    if (gii > 0.0) {
      limit = std::min(limit, network.capacitance()[i] / gii);
    }
  }
  substeps_ = static_cast<std::size_t>(std::ceil(dt / limit));
  if (substeps_ == 0) substeps_ = 1;
  model_ = std::make_unique<ThermalModel>(
      network, dt / static_cast<double>(substeps_), backend);
}

linalg::Vector EulerSimulator::step(const linalg::Vector& t,
                                    const linalg::Vector& p) const {
  linalg::Vector state;
  step_into(t, p, state);
  return state;
}

void EulerSimulator::step_into(const linalg::Vector& t,
                               const linalg::Vector& p,
                               linalg::Vector& out) const {
  // The common case (dt within the stability limit, e.g. the simulator's
  // 0.4 ms step) needs no intermediate state and stays allocation-free.
  if (substeps_ == 1) {
    model_->step_into(t, p, out);
    return;
  }
  // Multi-substep steps double-buffer through one scratch vector (a single
  // small allocation per step; these are the coarse dfs-period-sized steps,
  // where each step already amortizes a policy solve).
  linalg::Vector scratch = t;
  model_->step_into(scratch, p, out);
  for (std::size_t s = 1; s < substeps_; ++s) {
    std::swap(scratch, out);
    model_->step_into(scratch, p, out);
  }
}

Rk4Simulator::Rk4Simulator(RcNetwork network, double dt,
                           linalg::MatrixBackend backend)
    : network_(std::move(network)), dt_(dt) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("Rk4Simulator: dt must be positive");
  }
  backend_ = linalg::resolve_backend(backend, network_.num_nodes(),
                                     network_.conductance_sparse().nnz());
}

linalg::Vector Rk4Simulator::derivative(const linalg::Vector& t,
                                        const linalg::Vector& p) const {
  // dT/dt = C^{-1} (-G T + g_amb T_amb + p)
  linalg::Vector d = backend_ == linalg::MatrixBackend::kSparse
                         ? network_.conductance_sparse() * t
                         : network_.conductance() * t;
  const linalg::Vector& g_amb = network_.ambient_conductance();
  const linalg::Vector& cap = network_.capacitance();
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = (-d[i] + g_amb[i] * network_.ambient_celsius() + p[i]) / cap[i];
  }
  return d;
}

linalg::Vector Rk4Simulator::step(const linalg::Vector& t,
                                  const linalg::Vector& p) const {
  if (t.size() != num_nodes() || p.size() != num_nodes()) {
    throw std::invalid_argument("Rk4Simulator::step: dimension mismatch");
  }
  const linalg::Vector k1 = derivative(t, p);
  linalg::Vector t2 = t;
  t2.axpy(dt_ / 2.0, k1);
  const linalg::Vector k2 = derivative(t2, p);
  linalg::Vector t3 = t;
  t3.axpy(dt_ / 2.0, k2);
  const linalg::Vector k3 = derivative(t3, p);
  linalg::Vector t4 = t;
  t4.axpy(dt_, k3);
  const linalg::Vector k4 = derivative(t4, p);

  linalg::Vector out = t;
  out.axpy(dt_ / 6.0, k1);
  out.axpy(dt_ / 3.0, k2);
  out.axpy(dt_ / 3.0, k3);
  out.axpy(dt_ / 6.0, k4);
  return out;
}

ExactSimulator::ExactSimulator(const RcNetwork& network, double dt)
    : dt_(dt) {
  if (!(dt > 0.0)) {
    throw std::invalid_argument("ExactSimulator: dt must be positive");
  }
  const ThermalModel probe(network, 1e-9, linalg::MatrixBackend::kDense);
  disc_ = probe.exact_discretization(dt);
}

linalg::Vector ExactSimulator::step(const linalg::Vector& t,
                                    const linalg::Vector& p) const {
  linalg::Vector out;
  step_into(t, p, out);
  return out;
}

void ExactSimulator::step_into(const linalg::Vector& t,
                               const linalg::Vector& p,
                               linalg::Vector& out) const {
  if (t.size() != num_nodes() || p.size() != num_nodes()) {
    throw std::invalid_argument("ExactSimulator::step: dimension mismatch");
  }
  disc_.a.multiply_into(t, out);
  disc_.b.multiply_add_into(p, out);
  out += disc_.c;
}

}  // namespace protemp::thermal
