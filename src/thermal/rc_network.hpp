// Compact RC thermal network built from a floorplan (HotSpot-style [17,19]).
//
// Nodes:
//   * one node per floorplan block (silicon layer),
//   * one heat-spreader node (copper lid, lumped),
//   * one heat-sink node (lumped; couples to ambient through the
//     convection resistance).
//
// Conductances:
//   * lateral, between abutting silicon blocks: series of the two half-block
//     spreading resistances through the shared edge cross-section,
//   * vertical, block -> spreader: bulk conduction through the die plus TIM,
//     distributed per block area,
//   * spreader -> sink, and sink -> ambient.
//
// Capacitances: volumetric silicon heat capacity per block; lumped spreader
// and sink capacitances set by the package parameters.
//
// The resulting continuous-time model is
//     C dT/dt = -G T + g_amb * T_amb + p
// which the ThermalModel discretizes into the paper's Eq. (1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"
#include "thermal/floorplan.hpp"

namespace protemp::thermal {

/// Physical parameters of die and package. Defaults follow HotSpot's classic
/// configuration, with the convection resistance left as the main
/// calibration knob.
struct PackageParams {
  double die_thickness = 0.35e-3;        ///< [m]
  double silicon_conductivity = 100.0;   ///< [W/(m K)]
  double silicon_volumetric_heat = 1.75e6;  ///< [J/(m^3 K)]
  /// HotSpot-style lumping factor on block capacitances: accounts for
  /// thermal mass directly coupled to each block (interconnect stack,
  /// local TIM/copper) beyond the bare silicon volume. Scales the block
  /// time constants without changing any steady state. Ablation knob;
  /// 1.0 = bare silicon.
  double block_capacitance_factor = 1.0;

  double tim_resistance_per_area = 2.0e-5;  ///< die->spreader TIM [K m^2/W]

  double spreader_capacitance = 4.0;   ///< lumped [J/K]
  double spreader_to_sink_resistance = 0.35;  ///< [K/W]

  double sink_capacitance = 48.0;      ///< lumped [J/K]
  double convection_resistance = 0.9;  ///< sink->ambient [K/W]

  double ambient_celsius = 45.0;       ///< inside-enclosure ambient [degC]

  /// Throws std::invalid_argument on non-physical (non-positive) values.
  void validate() const;
};

/// Assembled network: symmetric conductance matrix, per-node capacitance,
/// and per-node conductance to the (fixed-temperature) ambient node.
class RcNetwork {
 public:
  /// Builds the network for a floorplan. Block i becomes node i; the
  /// spreader and sink are appended after the blocks.
  RcNetwork(const Floorplan& floorplan, const PackageParams& params);

  std::size_t num_nodes() const noexcept { return capacitance_.size(); }
  std::size_t num_blocks() const noexcept { return num_blocks_; }
  std::size_t spreader_node() const noexcept { return num_blocks_; }
  std::size_t sink_node() const noexcept { return num_blocks_ + 1; }

  const std::string& node_name(std::size_t i) const { return names_.at(i); }

  /// Symmetric PSD conductance Laplacian G [W/K]; row i sums to
  /// ambient_conductance(i).
  const linalg::Matrix& conductance() const noexcept { return conductance_; }
  /// The same Laplacian in CSR form (RC networks couple only neighboring
  /// blocks, so G carries ~O(nodes) nonzeros). Assembled from the same
  /// accumulator as the dense view: the stored values are bitwise equal.
  const linalg::SparseMatrix& conductance_sparse() const noexcept {
    return conductance_sparse_;
  }
  /// Per-node thermal capacitance [J/K].
  const linalg::Vector& capacitance() const noexcept { return capacitance_; }
  /// Per-node conductance to ambient [W/K] (only the sink is nonzero in the
  /// default package, but the representation is general).
  const linalg::Vector& ambient_conductance() const noexcept {
    return g_ambient_;
  }
  double ambient_celsius() const noexcept { return ambient_celsius_; }

  /// Steady-state temperatures for a per-node power vector [W]. The
  /// backend selects the linear solver: dense LU (the historical path) or
  /// the banded sparse Cholesky; kAuto resolves by network size. The two
  /// agree to factorization accuracy (~1e-12 relative, tested at 1e-10).
  linalg::Vector steady_state(
      const linalg::Vector& power,
      linalg::MatrixBackend backend = linalg::MatrixBackend::kAuto) const;

 private:
  void add_conductance(linalg::SparseBuilder& builder, std::size_t a,
                       std::size_t b, double g);

  std::size_t num_blocks_ = 0;
  std::vector<std::string> names_;
  linalg::Matrix conductance_;
  linalg::SparseMatrix conductance_sparse_;
  linalg::Vector capacitance_;
  linalg::Vector g_ambient_;
  double ambient_celsius_ = 45.0;
};

}  // namespace protemp::thermal
