#include "thermal/model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/expm.hpp"

namespace protemp::thermal {

ThermalModel::ThermalModel(RcNetwork network, double dt)
    : network_(std::move(network)), dt_(dt) {
  if (!(dt > 0.0) || !std::isfinite(dt)) {
    throw std::invalid_argument("ThermalModel: dt must be positive");
  }
  const std::size_t n = network_.num_nodes();
  const linalg::Matrix& g = network_.conductance();
  const linalg::Vector& c = network_.capacitance();

  max_stable_dt_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (g(i, i) > 0.0) {
      max_stable_dt_ = std::min(max_stable_dt_, c[i] / g(i, i));
    }
  }
  if (dt_ > max_stable_dt_) {
    throw std::invalid_argument(
        "ThermalModel: dt exceeds the positivity-preserving Euler limit (" +
        std::to_string(max_stable_dt_) + " s)");
  }

  a_ = linalg::Matrix(n, n);
  b_ = linalg::Vector(n);
  c_ = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    b_[i] = dt_ / c[i];
    for (std::size_t j = 0; j < n; ++j) {
      a_(i, j) = (i == j ? 1.0 : 0.0) - dt_ * g(i, j) / c[i];
    }
    c_[i] = dt_ * network_.ambient_conductance()[i] *
            network_.ambient_celsius() / c[i];
  }
}

double ThermalModel::coeff_a(std::size_t i, std::size_t j) const {
  if (i == j) {
    throw std::invalid_argument("ThermalModel::coeff_a: i == j");
  }
  return dt_ * (-network_.conductance()(i, j)) /
         network_.capacitance()[i];
}

double ThermalModel::coeff_b(std::size_t i) const {
  return dt_ / network_.capacitance()[i];
}

linalg::Vector ThermalModel::step(const linalg::Vector& t,
                                  const linalg::Vector& p) const {
  linalg::Vector next;
  step_into(t, p, next);
  return next;
}

void ThermalModel::step_into(const linalg::Vector& t, const linalg::Vector& p,
                             linalg::Vector& out) const {
  if (t.size() != num_nodes() || p.size() != num_nodes()) {
    throw std::invalid_argument("ThermalModel::step: dimension mismatch");
  }
  a_.multiply_into(t, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += b_[i] * p[i] + c_[i];
  }
}

ThermalModel::Discretization ThermalModel::exact_discretization(
    double step_dt) const {
  if (!(step_dt > 0.0)) {
    throw std::invalid_argument("exact_discretization: dt must be positive");
  }
  const std::size_t n = num_nodes();
  const linalg::Matrix& g = network_.conductance();
  const linalg::Vector& cap = network_.capacitance();

  // Continuous A_c = -C^{-1} G.
  linalg::Matrix a_c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a_c(i, j) = -g(i, j) / cap[i];
  }
  const linalg::Matrix a_scaled = a_c * step_dt;

  Discretization out;
  out.a = linalg::expm(a_scaled);
  // B = (int_0^dt e^{A_c s} ds) C^{-1} = dt * phi(A_c dt) * C^{-1}.
  const linalg::Matrix phi = linalg::expm_phi(a_scaled);
  out.b = linalg::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.b(i, j) = step_dt * phi(i, j) / cap[j];
    }
  }
  // c = B (g_amb .* T_amb).
  linalg::Vector amb(n);
  for (std::size_t i = 0; i < n; ++i) {
    amb[i] = network_.ambient_conductance()[i] * network_.ambient_celsius();
  }
  out.c = out.b * amb;
  return out;
}

linalg::Vector HorizonAffineMap::evaluate(std::size_t k,
                                          const linalg::Vector& p_var,
                                          double tstart) const {
  if (k == 0 || k > steps()) {
    throw std::out_of_range("HorizonAffineMap::evaluate: k out of range");
  }
  linalg::Vector t = m[k - 1] * p_var;
  t.axpy(tstart, u[k - 1]);
  t += w[k - 1];
  return t;
}

linalg::Vector HorizonAffineMap::evaluate_state(std::size_t k,
                                                const linalg::Vector& p_var,
                                                const linalg::Vector& t0) const {
  if (k == 0 || k > steps()) {
    throw std::out_of_range("HorizonAffineMap::evaluate_state: k out of range");
  }
  linalg::Vector t = m[k - 1] * p_var;
  t += s[k - 1] * t0;
  t += w[k - 1];
  return t;
}

HorizonAffineMap build_horizon_map(const ThermalModel& model,
                                   std::size_t steps,
                                   std::vector<std::size_t> monitored,
                                   std::vector<std::size_t> variables,
                                   const linalg::Vector& fixed_power) {
  const std::size_t n = model.num_nodes();
  if (steps == 0) {
    throw std::invalid_argument("build_horizon_map: steps must be >= 1");
  }
  if (fixed_power.size() != n) {
    throw std::invalid_argument("build_horizon_map: fixed_power size mismatch");
  }
  for (const std::size_t i : monitored) {
    if (i >= n) throw std::out_of_range("build_horizon_map: monitored index");
  }
  for (const std::size_t i : variables) {
    if (i >= n) throw std::out_of_range("build_horizon_map: variable index");
  }

  const linalg::Matrix& a = model.a_discrete();
  const linalg::Vector& b = model.b_discrete();
  const std::size_t nv = variables.size();

  // Fixed-power injection with variable nodes zeroed.
  linalg::Vector inject = model.c_ambient();
  {
    linalg::Vector p_fix = fixed_power;
    for (const std::size_t i : variables) p_fix[i] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inject[i] += b[i] * p_fix[i];
  }

  HorizonAffineMap out;
  out.monitored = monitored;
  out.variables = variables;
  out.m.reserve(steps);
  out.u.reserve(steps);
  out.w.reserve(steps);

  // Full-state recursions:
  //   P_{k+1} = A P_k + B E,  Z_{k+1} = A Z_k,  w_{k+1} = A w_k + inject,
  // with P_0 = 0, Z_0 = I, w_0 = 0; u_k = Z_k 1.
  linalg::Matrix p_full(n, nv);
  linalg::Matrix z_full = linalg::Matrix::identity(n);
  linalg::Vector w_full(n);

  for (std::size_t k = 1; k <= steps; ++k) {
    linalg::Matrix p_next = a * p_full;
    for (std::size_t v = 0; v < nv; ++v) {
      p_next(variables[v], v) += b[variables[v]];
    }
    p_full = std::move(p_next);
    z_full = a * z_full;
    linalg::Vector w_next = a * w_full;
    w_next += inject;
    w_full = std::move(w_next);

    linalg::Matrix m_row(monitored.size(), nv);
    linalg::Matrix s_row(monitored.size(), n);
    linalg::Vector u_row(monitored.size());
    linalg::Vector w_row(monitored.size());
    for (std::size_t r = 0; r < monitored.size(); ++r) {
      double row_sum = 0.0;
      for (std::size_t v = 0; v < nv; ++v) {
        m_row(r, v) = p_full(monitored[r], v);
      }
      for (std::size_t j = 0; j < n; ++j) {
        s_row(r, j) = z_full(monitored[r], j);
        row_sum += z_full(monitored[r], j);
      }
      u_row[r] = row_sum;
      w_row[r] = w_full[monitored[r]];
    }
    out.m.push_back(std::move(m_row));
    out.s.push_back(std::move(s_row));
    out.u.push_back(std::move(u_row));
    out.w.push_back(std::move(w_row));
  }
  return out;
}

}  // namespace protemp::thermal
