#include "thermal/model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "linalg/expm.hpp"

namespace protemp::thermal {

ThermalModel::ThermalModel(RcNetwork network, double dt,
                           linalg::MatrixBackend backend)
    : network_(std::move(network)), dt_(dt) {
  if (!(dt > 0.0) || !std::isfinite(dt)) {
    throw std::invalid_argument("ThermalModel: dt must be positive");
  }
  const std::size_t n = network_.num_nodes();
  const linalg::Matrix& g = network_.conductance();
  const linalg::SparseMatrix& g_sparse = network_.conductance_sparse();
  const linalg::Vector& c = network_.capacitance();
  backend_ = linalg::resolve_backend(backend, n, g_sparse.nnz());

  max_stable_dt_ = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (g(i, i) > 0.0) {
      max_stable_dt_ = std::min(max_stable_dt_, c[i] / g(i, i));
    }
  }
  if (dt_ > max_stable_dt_) {
    throw std::invalid_argument(
        "ThermalModel: dt exceeds the positivity-preserving Euler limit (" +
        std::to_string(max_stable_dt_) + " s)");
  }

  b_ = linalg::Vector(n);
  c_ = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    b_[i] = dt_ / c[i];
    c_[i] = dt_ * network_.ambient_conductance()[i] *
            network_.ambient_celsius() / c[i];
  }
  if (backend_ == linalg::MatrixBackend::kSparse) {
    // A_d = I - dt C^{-1} G shares G's pattern plus the full diagonal,
    // and only the ~O(n) stored entries are materialized — no O(n^2)
    // dense mirror in sparse mode (at thousands of nodes that mirror is
    // hundreds of megabytes of anti-scaling). Each entry evaluates the
    // same expression on the same values as the dense build, so the two
    // kernels stream bitwise-equal coefficients.
    linalg::SparseBuilder builder(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      bool diag_seen = false;
      for (std::size_t k = g_sparse.row_ptr()[i];
           k < g_sparse.row_ptr()[i + 1]; ++k) {
        const std::size_t j = g_sparse.col_index()[k];
        const double gij = g_sparse.values()[k];
        builder.add(i, j, (i == j ? 1.0 : 0.0) - dt_ * gij / c[i]);
        diag_seen = diag_seen || j == i;
      }
      if (!diag_seen) builder.add(i, i, 1.0);  // isolated node: a_ii = 1
    }
    a_sparse_ = builder.build();
  } else {
    a_ = linalg::Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a_(i, j) = (i == j ? 1.0 : 0.0) - dt_ * g(i, j) / c[i];
      }
    }
  }
}

const linalg::Matrix& ThermalModel::a_discrete() const {
  if (backend_ != linalg::MatrixBackend::kDense) {
    throw std::logic_error(
        "ThermalModel::a_discrete: model runs sparse (use a_sparse())");
  }
  return a_;
}

const linalg::SparseMatrix& ThermalModel::a_sparse() const {
  if (backend_ != linalg::MatrixBackend::kSparse) {
    throw std::logic_error("ThermalModel::a_sparse: model runs dense");
  }
  return a_sparse_;
}

double ThermalModel::coeff_a(std::size_t i, std::size_t j) const {
  if (i == j) {
    throw std::invalid_argument("ThermalModel::coeff_a: i == j");
  }
  return dt_ * (-network_.conductance()(i, j)) /
         network_.capacitance()[i];
}

double ThermalModel::coeff_b(std::size_t i) const {
  return dt_ / network_.capacitance()[i];
}

linalg::Vector ThermalModel::step(const linalg::Vector& t,
                                  const linalg::Vector& p) const {
  linalg::Vector next;
  step_into(t, p, next);
  return next;
}

void ThermalModel::step_into(const linalg::Vector& t, const linalg::Vector& p,
                             linalg::Vector& out) const {
  if (t.size() != num_nodes() || p.size() != num_nodes()) {
    throw std::invalid_argument("ThermalModel::step: dimension mismatch");
  }
  if (backend_ == linalg::MatrixBackend::kSparse) {
    a_sparse_.multiply_into(t, out);  // bitwise-equal to the dense product
  } else {
    a_.multiply_into(t, out);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += b_[i] * p[i] + c_[i];
  }
}

ThermalModel::Discretization ThermalModel::exact_discretization(
    double step_dt) const {
  if (!(step_dt > 0.0)) {
    throw std::invalid_argument("exact_discretization: dt must be positive");
  }
  const std::size_t n = num_nodes();
  const linalg::Matrix& g = network_.conductance();
  const linalg::Vector& cap = network_.capacitance();

  // Continuous A_c = -C^{-1} G.
  linalg::Matrix a_c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a_c(i, j) = -g(i, j) / cap[i];
  }
  const linalg::Matrix a_scaled = a_c * step_dt;

  Discretization out;
  out.a = linalg::expm(a_scaled);
  // B = (int_0^dt e^{A_c s} ds) C^{-1} = dt * phi(A_c dt) * C^{-1}.
  const linalg::Matrix phi = linalg::expm_phi(a_scaled);
  out.b = linalg::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.b(i, j) = step_dt * phi(i, j) / cap[j];
    }
  }
  // c = B (g_amb .* T_amb).
  linalg::Vector amb(n);
  for (std::size_t i = 0; i < n; ++i) {
    amb[i] = network_.ambient_conductance()[i] * network_.ambient_celsius();
  }
  out.c = out.b * amb;
  return out;
}

linalg::Vector HorizonAffineMap::evaluate(std::size_t k,
                                          const linalg::Vector& p_var,
                                          double tstart) const {
  if (k == 0 || k > steps()) {
    throw std::out_of_range("HorizonAffineMap::evaluate: k out of range");
  }
  if (p_var.size() != variables.size()) {
    throw std::invalid_argument("HorizonAffineMap::evaluate: p_var size");
  }
  linalg::Vector t(monitored.size());
  for (std::size_t r = 0; r < monitored.size(); ++r) {
    const double* mr = m_row(k, r);
    double acc = 0.0;
    for (std::size_t v = 0; v < p_var.size(); ++v) acc += mr[v] * p_var[v];
    t[r] = acc + tstart * u_at(k, r) + w_at(k, r);
  }
  return t;
}

linalg::Vector HorizonAffineMap::evaluate_state(std::size_t k,
                                                const linalg::Vector& p_var,
                                                const linalg::Vector& t0) const {
  if (k == 0 || k > steps()) {
    throw std::out_of_range("HorizonAffineMap::evaluate_state: k out of range");
  }
  if (p_var.size() != variables.size() || t0.size() != s.cols()) {
    throw std::invalid_argument("HorizonAffineMap::evaluate_state: size");
  }
  linalg::Vector t(monitored.size());
  for (std::size_t r = 0; r < monitored.size(); ++r) {
    const double* mr = m_row(k, r);
    const double* sr = s_row(k, r);
    double acc = 0.0;
    for (std::size_t v = 0; v < p_var.size(); ++v) acc += mr[v] * p_var[v];
    double state = 0.0;
    for (std::size_t j = 0; j < t0.size(); ++j) state += sr[j] * t0[j];
    t[r] = acc + state + w_at(k, r);
  }
  return t;
}

HorizonAffineMap build_horizon_map(const ThermalModel& model,
                                   std::size_t steps,
                                   std::vector<std::size_t> monitored,
                                   std::vector<std::size_t> variables,
                                   const linalg::Vector& fixed_power) {
  const std::size_t n = model.num_nodes();
  if (steps == 0) {
    throw std::invalid_argument("build_horizon_map: steps must be >= 1");
  }
  if (fixed_power.size() != n) {
    throw std::invalid_argument("build_horizon_map: fixed_power size mismatch");
  }
  for (const std::size_t i : monitored) {
    if (i >= n) throw std::out_of_range("build_horizon_map: monitored index");
  }
  for (const std::size_t i : variables) {
    if (i >= n) throw std::out_of_range("build_horizon_map: variable index");
  }

  const linalg::Vector& b = model.b_discrete();
  const std::size_t nv = variables.size();

  // Fixed-power injection with variable nodes zeroed.
  linalg::Vector inject = model.c_ambient();
  {
    linalg::Vector p_fix = fixed_power;
    for (const std::size_t i : variables) p_fix[i] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inject[i] += b[i] * p_fix[i];
  }

  HorizonAffineMap out;
  out.monitored = monitored;
  out.variables = variables;
  out.num_nodes = n;
  const std::size_t blocks = steps + 1;
  out.m.resize(blocks * n, nv);
  out.s.resize(blocks * n, n);
  out.u.resize(blocks * n);
  out.w.resize(blocks * n);

  // Full-state recursions, computed block-to-block in the flat storage:
  //   P_k = A P_{k-1} + B E,  Z_k = A Z_{k-1},  w_k = A w_{k-1} + inject,
  // with P_0 = 0, Z_0 = I, w_0 = 0; u_k = Z_k 1. Each step reads block
  // k-1 and writes block k directly -- the products ARE the stores, so
  // the build streams exactly one pass over its output (no per-step
  // temporaries, no extraction copies; those used to dominate the build
  // once the products went sparse).
  //
  // The products are the build's entire cost: O(steps * n^2 * (n + nv))
  // dense. In sparse mode the same recursions run over A's ~O(n) stored
  // entries (O(steps * n * (n + nv))), and the sparse kernel visits
  // exactly the nonzeros the dense i-k-j kernel does, in the same order,
  // so both backends produce bitwise-identical coefficients.
  const bool sparse = model.backend() == linalg::MatrixBackend::kSparse;
  for (std::size_t i = 0; i < n; ++i) {
    out.s(i, i) = 1.0;  // Z_0 = I
    out.u[i] = 1.0;     // its row sums
  }

  for (std::size_t k = 1; k <= steps; ++k) {
    const double* s_prev = out.s.row_data((k - 1) * n);
    const double* m_prev = out.m.row_data((k - 1) * n);
    const double* w_prev = out.w.data() + (k - 1) * n;
    double* s_cur = out.s.row_data(k * n);
    double* m_cur = out.m.row_data(k * n);
    double* w_cur = out.w.data() + k * n;
    if (sparse) {
      const linalg::SparseMatrix& a_sp = model.a_sparse();
      a_sp.multiply_raw(s_prev, n, s_cur);
      a_sp.multiply_raw(m_prev, nv, m_cur);
      a_sp.multiply_raw(w_prev, 1, w_cur);
    } else {
      const linalg::Matrix& a = model.a_discrete();
      a.multiply_raw(s_prev, n, s_cur);
      a.multiply_raw(m_prev, nv, m_cur);
      a.multiply_raw(w_prev, 1, w_cur);
    }
    for (std::size_t v = 0; v < nv; ++v) {
      m_cur[variables[v] * nv + v] += b[variables[v]];
    }
    double* u_cur = out.u.data() + k * n;
    for (std::size_t i = 0; i < n; ++i) {
      w_cur[i] += inject[i];
      const double* s_row = s_cur + i * n;
      double row_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) row_sum += s_row[j];
      u_cur[i] = row_sum;
    }
  }
  return out;
}

}  // namespace protemp::thermal
