// Discrete-time thermal model — the paper's Eq. (1).
//
// From the RC network's continuous dynamics  C dT/dt = -G T + g_amb T_amb + p
// the forward-Euler discretization with step dt gives
//
//   t_{k+1,i} = t_{k,i} + sum_{j in Adj_i} a_ij (t_{k,j} - t_{k,i})
//             + a_i,amb (T_amb - t_{k,i}) + b_i p_i                  (Eq. 1)
//
// with a_ij = dt g_ij / C_i and b_i = dt / C_i. The ambient term is the
// extra neighbour the paper leaves implicit (heat must leave the chip; see
// DESIGN.md). The model also provides the exact zero-order-hold
// discretization (via matrix exponential) used to validate Euler's accuracy,
// and the stacked affine horizon maps consumed by the Pro-Temp optimizer.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "thermal/rc_network.hpp"

namespace protemp::thermal {

class ThermalModel {
 public:
  /// Builds the Euler discretization at step `dt` [s]. Throws
  /// std::invalid_argument if dt exceeds the forward-Euler stability limit
  /// (all diagonal entries of A_d must stay non-negative, which also makes
  /// the discrete system monotone/positive).
  ///
  /// `backend` selects the stepping/horizon kernels: kDense streams the
  /// full n x n state matrix, kSparse streams only its ~O(n) stored
  /// entries; kAuto (default) resolves by network size, keeping
  /// Niagara-class chips on the historical dense path. The two backends
  /// produce bitwise-identical steps (the sparse kernels visit exactly the
  /// nonzeros the dense ones do, in the same order); only the
  /// factorization-based steady_state differs, to ~1e-12 relative.
  ThermalModel(RcNetwork network, double dt,
               linalg::MatrixBackend backend = linalg::MatrixBackend::kAuto);

  std::size_t num_nodes() const noexcept { return network_.num_nodes(); }
  double dt() const noexcept { return dt_; }
  const RcNetwork& network() const noexcept { return network_; }
  /// The resolved backend (never kAuto).
  linalg::MatrixBackend backend() const noexcept { return backend_; }

  /// Largest dt keeping the Euler discretization positivity-preserving:
  /// min_i C_i / G_ii.
  double max_stable_dt() const noexcept { return max_stable_dt_; }

  /// Discrete state matrix A_d = I - dt C^{-1} G (row-substochastic).
  /// Built (and O(n^2) stored) only in dense mode; a sparse-mode model
  /// never materializes the dense mirror. Throws std::logic_error in
  /// sparse mode — dispatch on backend().
  const linalg::Matrix& a_discrete() const;
  /// CSR form of A_d, built only in sparse mode (same pattern as G plus
  /// the full diagonal). Throws std::logic_error in dense mode.
  const linalg::SparseMatrix& a_sparse() const;
  /// Discrete input gain b_i = dt / C_i (diagonal, returned as vector).
  const linalg::Vector& b_discrete() const noexcept { return b_; }
  /// Constant ambient injection c_i = dt g_amb,i T_amb / C_i.
  const linalg::Vector& c_ambient() const noexcept { return c_; }

  /// Paper notation: coupling coefficient a_ij (i != j) and input gain b_i.
  double coeff_a(std::size_t i, std::size_t j) const;
  double coeff_b(std::size_t i) const;

  /// One Euler step: t_{k+1} = A_d t_k + B_d p + c.
  linalg::Vector step(const linalg::Vector& t, const linalg::Vector& p) const;
  /// In-place form for step loops: writes t_{k+1} into `out` (resized;
  /// must not alias `t`).
  void step_into(const linalg::Vector& t, const linalg::Vector& p,
                 linalg::Vector& out) const;

  /// Steady-state temperatures for constant power (solved on this model's
  /// backend).
  linalg::Vector steady_state(const linalg::Vector& power) const {
    return network_.steady_state(power, backend_);
  }

  /// Exact zero-order-hold discretization over `step_dt`:
  ///   t' = a t + b p + c.
  struct Discretization {
    linalg::Matrix a;
    linalg::Matrix b;
    linalg::Vector c;
  };
  Discretization exact_discretization(double step_dt) const;

 private:
  RcNetwork network_;
  double dt_;
  linalg::MatrixBackend backend_;
  double max_stable_dt_;
  linalg::Matrix a_;
  linalg::SparseMatrix a_sparse_;  ///< populated only in sparse mode
  linalg::Vector b_;
  linalg::Vector c_;
};

/// Stacked affine horizon maps: with every node initialized at `tstart` and
/// the variable nodes driven by constant power p_var (all other nodes held
/// at their fixed background power), the temperature of monitored node r at
/// step k is
///
///   T_k[r] = m[k-1].row(r) . p_var + u[k-1][r] * tstart + w[k-1][r]
///
/// for k = 1..steps. This is the state-elimination that turns the paper's
/// optimization (3) into a small dense program over p (and then over
/// s = f^2); see DESIGN.md.
struct HorizonAffineMap {
  /// Flat row-major storage in *full-node* blocks: block k (k = 0 is the
  /// recursion's initial condition, k in 1..steps the horizon) occupies
  /// rows [k*num_nodes, (k+1)*num_nodes). The build recursion reads block
  /// k-1 and writes block k in place — no per-step temporaries, no
  /// extraction copies; at 250 steps x 256 cores those used to dominate
  /// the build once the products went sparse. Consumers index through the
  /// accessors below, which hide the block layout and select the
  /// monitored rows.
  linalg::Matrix m;  ///< ((steps+1) * num_nodes) x n_var; block 0 = 0
  /// Rows of A_d^k: the response to an arbitrary (non-uniform) initial
  /// state. u is the row sum of s, so the scalar-tstart form is the
  /// special case T_0 = tstart * 1. Used by the online (MPC-style)
  /// controller.
  linalg::Matrix s;  ///< ((steps+1) * num_nodes) x num_nodes; block 0 = I
  linalg::Vector u;  ///< (steps+1) * num_nodes
  linalg::Vector w;  ///< (steps+1) * num_nodes; block 0 = 0
  std::size_t num_nodes = 0;
  std::vector<std::size_t> monitored;  ///< node indices of the result rows
  std::vector<std::size_t> variables;  ///< node indices of the columns

  std::size_t steps() const noexcept {
    return num_nodes == 0 ? 0 : u.size() / num_nodes - 1;
  }

  /// Flat row of (k in 1..steps, monitored index r).
  std::size_t flat_row(std::size_t k, std::size_t r) const noexcept {
    return k * num_nodes + monitored[r];
  }
  const double* m_row(std::size_t k, std::size_t r) const {
    return m.row_data(flat_row(k, r));
  }
  const double* s_row(std::size_t k, std::size_t r) const {
    return s.row_data(flat_row(k, r));
  }
  double u_at(std::size_t k, std::size_t r) const {
    return u[flat_row(k, r)];
  }
  double w_at(std::size_t k, std::size_t r) const {
    return w[flat_row(k, r)];
  }

  /// Evaluates T_k (k in 1..steps) for the monitored nodes, worst-case
  /// uniform start T_0 = tstart * 1.
  linalg::Vector evaluate(std::size_t k, const linalg::Vector& p_var,
                          double tstart) const;

  /// Evaluates T_k for an arbitrary full initial state (size n_nodes).
  linalg::Vector evaluate_state(std::size_t k, const linalg::Vector& p_var,
                                const linalg::Vector& t0) const;
};

/// Builds the horizon map.
///  - `monitored`: node indices whose temperatures are constrained;
///  - `variables`: node indices whose power is the decision variable;
///  - `fixed_power`: full-length per-node background power (entries at
///    variable nodes are ignored).
HorizonAffineMap build_horizon_map(const ThermalModel& model,
                                   std::size_t steps,
                                   std::vector<std::size_t> monitored,
                                   std::vector<std::size_t> variables,
                                   const linalg::Vector& fixed_power);

}  // namespace protemp::thermal
