// Discrete-time thermal model — the paper's Eq. (1).
//
// From the RC network's continuous dynamics  C dT/dt = -G T + g_amb T_amb + p
// the forward-Euler discretization with step dt gives
//
//   t_{k+1,i} = t_{k,i} + sum_{j in Adj_i} a_ij (t_{k,j} - t_{k,i})
//             + a_i,amb (T_amb - t_{k,i}) + b_i p_i                  (Eq. 1)
//
// with a_ij = dt g_ij / C_i and b_i = dt / C_i. The ambient term is the
// extra neighbour the paper leaves implicit (heat must leave the chip; see
// DESIGN.md). The model also provides the exact zero-order-hold
// discretization (via matrix exponential) used to validate Euler's accuracy,
// and the stacked affine horizon maps consumed by the Pro-Temp optimizer.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "thermal/rc_network.hpp"

namespace protemp::thermal {

class ThermalModel {
 public:
  /// Builds the Euler discretization at step `dt` [s]. Throws
  /// std::invalid_argument if dt exceeds the forward-Euler stability limit
  /// (all diagonal entries of A_d must stay non-negative, which also makes
  /// the discrete system monotone/positive).
  ThermalModel(RcNetwork network, double dt);

  std::size_t num_nodes() const noexcept { return network_.num_nodes(); }
  double dt() const noexcept { return dt_; }
  const RcNetwork& network() const noexcept { return network_; }

  /// Largest dt keeping the Euler discretization positivity-preserving:
  /// min_i C_i / G_ii.
  double max_stable_dt() const noexcept { return max_stable_dt_; }

  /// Discrete state matrix A_d = I - dt C^{-1} G (row-substochastic).
  const linalg::Matrix& a_discrete() const noexcept { return a_; }
  /// Discrete input gain b_i = dt / C_i (diagonal, returned as vector).
  const linalg::Vector& b_discrete() const noexcept { return b_; }
  /// Constant ambient injection c_i = dt g_amb,i T_amb / C_i.
  const linalg::Vector& c_ambient() const noexcept { return c_; }

  /// Paper notation: coupling coefficient a_ij (i != j) and input gain b_i.
  double coeff_a(std::size_t i, std::size_t j) const;
  double coeff_b(std::size_t i) const;

  /// One Euler step: t_{k+1} = A_d t_k + B_d p + c.
  linalg::Vector step(const linalg::Vector& t, const linalg::Vector& p) const;
  /// In-place form for step loops: writes t_{k+1} into `out` (resized;
  /// must not alias `t`).
  void step_into(const linalg::Vector& t, const linalg::Vector& p,
                 linalg::Vector& out) const;

  /// Steady-state temperatures for constant power.
  linalg::Vector steady_state(const linalg::Vector& power) const {
    return network_.steady_state(power);
  }

  /// Exact zero-order-hold discretization over `step_dt`:
  ///   t' = a t + b p + c.
  struct Discretization {
    linalg::Matrix a;
    linalg::Matrix b;
    linalg::Vector c;
  };
  Discretization exact_discretization(double step_dt) const;

 private:
  RcNetwork network_;
  double dt_;
  double max_stable_dt_;
  linalg::Matrix a_;
  linalg::Vector b_;
  linalg::Vector c_;
};

/// Stacked affine horizon maps: with every node initialized at `tstart` and
/// the variable nodes driven by constant power p_var (all other nodes held
/// at their fixed background power), the temperature of monitored node r at
/// step k is
///
///   T_k[r] = m[k-1].row(r) . p_var + u[k-1][r] * tstart + w[k-1][r]
///
/// for k = 1..steps. This is the state-elimination that turns the paper's
/// optimization (3) into a small dense program over p (and then over
/// s = f^2); see DESIGN.md.
struct HorizonAffineMap {
  std::vector<linalg::Matrix> m;  ///< steps entries, each monitored x n_var
  std::vector<linalg::Vector> u;  ///< steps entries, each monitored
  std::vector<linalg::Vector> w;  ///< steps entries, each monitored
  /// Monitored rows of A_d^k (steps entries, each monitored x n_nodes):
  /// the response to an arbitrary (non-uniform) initial state. u[k] is the
  /// row sum of s[k], so the scalar-tstart form is the special case
  /// T_0 = tstart * 1. Used by the online (MPC-style) controller.
  std::vector<linalg::Matrix> s;
  std::vector<std::size_t> monitored;  ///< node indices of the rows
  std::vector<std::size_t> variables;  ///< node indices of the columns

  std::size_t steps() const noexcept { return m.size(); }

  /// Evaluates T_k (k in 1..steps) for the monitored nodes, worst-case
  /// uniform start T_0 = tstart * 1.
  linalg::Vector evaluate(std::size_t k, const linalg::Vector& p_var,
                          double tstart) const;

  /// Evaluates T_k for an arbitrary full initial state (size n_nodes).
  linalg::Vector evaluate_state(std::size_t k, const linalg::Vector& p_var,
                                const linalg::Vector& t0) const;
};

/// Builds the horizon map.
///  - `monitored`: node indices whose temperatures are constrained;
///  - `variables`: node indices whose power is the decision variable;
///  - `fixed_power`: full-length per-node background power (entries at
///    variable nodes are ignored).
HorizonAffineMap build_horizon_map(const ThermalModel& model,
                                   std::size_t steps,
                                   std::vector<std::size_t> monitored,
                                   std::vector<std::size_t> variables,
                                   const linalg::Vector& fixed_power);

}  // namespace protemp::thermal
