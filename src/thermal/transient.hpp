// Transient thermal simulators.
//
// Three integrators over the same RC network, used to cross-validate each
// other (the paper validates its models against HotSpot [17]; we validate
// forward Euler — the paper's Eq. 1 — against RK4 and the exact
// matrix-exponential solution):
//
//   * EulerSimulator — the paper's scheme, optionally sub-stepping when the
//     requested step exceeds the stability limit;
//   * Rk4Simulator   — classic fixed-step RK4 on the continuous ODE;
//   * ExactSimulator — zero-order-hold via matrix exponential (exact for
//     piecewise-constant power).
#pragma once

#include <memory>

#include "thermal/model.hpp"

namespace protemp::thermal {

/// Common interface: advance the state by one step of the simulator's
/// configured dt under constant power p.
class TransientSimulator {
 public:
  virtual ~TransientSimulator() = default;
  virtual double dt() const noexcept = 0;
  virtual std::size_t num_nodes() const noexcept = 0;
  /// Returns t(t0 + dt) given t(t0) = t and constant power p over the step.
  virtual linalg::Vector step(const linalg::Vector& t,
                              const linalg::Vector& p) const = 0;

  /// In-place form for step loops: writes t(t0 + dt) into `out` (resized;
  /// must not alias `t`). Subclasses override to avoid per-step allocation.
  virtual void step_into(const linalg::Vector& t, const linalg::Vector& p,
                         linalg::Vector& out) const {
    out = step(t, p);
  }

  /// Convenience: integrates over `steps` steps, returning the final state.
  /// Double-buffers through step_into, so the loop itself allocates nothing
  /// beyond what a subclass's step_into needs.
  linalg::Vector run(linalg::Vector t, const linalg::Vector& p,
                     std::size_t steps) const;
};

/// Forward Euler per the paper's Eq. (1). If `dt` exceeds the stability
/// limit of the network, the step is internally divided into the smallest
/// number of equal substeps that restores stability.
class EulerSimulator final : public TransientSimulator {
 public:
  /// `backend` selects the stepping kernel (see ThermalModel); steps are
  /// bitwise identical across backends, sparse is O(nodes) per step.
  EulerSimulator(const RcNetwork& network, double dt,
                 linalg::MatrixBackend backend = linalg::MatrixBackend::kAuto);

  double dt() const noexcept override { return dt_; }
  std::size_t num_nodes() const noexcept override {
    return model_->num_nodes();
  }
  linalg::Vector step(const linalg::Vector& t,
                      const linalg::Vector& p) const override;
  void step_into(const linalg::Vector& t, const linalg::Vector& p,
                 linalg::Vector& out) const override;

  std::size_t substeps() const noexcept { return substeps_; }
  const ThermalModel& model() const noexcept { return *model_; }

 private:
  double dt_;
  std::size_t substeps_;
  std::unique_ptr<ThermalModel> model_;  // built at dt_/substeps_
};

/// Classic RK4 on C dT/dt = -G T + g_amb T_amb + p.
class Rk4Simulator final : public TransientSimulator {
 public:
  Rk4Simulator(RcNetwork network, double dt,
               linalg::MatrixBackend backend = linalg::MatrixBackend::kAuto);

  double dt() const noexcept override { return dt_; }
  std::size_t num_nodes() const noexcept override {
    return network_.num_nodes();
  }
  linalg::Vector step(const linalg::Vector& t,
                      const linalg::Vector& p) const override;

 private:
  linalg::Vector derivative(const linalg::Vector& t,
                            const linalg::Vector& p) const;

  RcNetwork network_;
  double dt_;
  linalg::MatrixBackend backend_;
};

/// Exact zero-order-hold discretization (matrix exponential, precomputed).
/// Inherently dense: e^{A dt} of a connected network has no zeros to
/// exploit, so there is no backend knob here — use Euler (sparse) for
/// many-core networks and reserve this one for validation at small n.
class ExactSimulator final : public TransientSimulator {
 public:
  ExactSimulator(const RcNetwork& network, double dt);

  double dt() const noexcept override { return dt_; }
  std::size_t num_nodes() const noexcept override {
    return static_cast<std::size_t>(disc_.a.rows());
  }
  linalg::Vector step(const linalg::Vector& t,
                      const linalg::Vector& p) const override;
  void step_into(const linalg::Vector& t, const linalg::Vector& p,
                 linalg::Vector& out) const override;

 private:
  double dt_;
  ThermalModel::Discretization disc_;
};

}  // namespace protemp::thermal
