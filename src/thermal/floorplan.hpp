// Chip floorplan: axis-aligned rectangular blocks on a die.
//
// The floorplan is the geometric input to the RC thermal network builder:
// block areas set capacitances and vertical conductances, and shared-edge
// lengths between abutting blocks set the lateral conductances (Adj_i in the
// paper's Eq. 1).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace protemp::thermal {

enum class BlockKind {
  kCore,          ///< processing core (DFS-controlled heat source)
  kCache,         ///< cache bank (background power)
  kInterconnect,  ///< crossbar / IO / DRAM bridges (background power)
  kOther,
};

const char* to_string(BlockKind kind) noexcept;

/// One rectangular block; coordinates in meters, origin at die lower-left.
struct Block {
  std::string name;
  BlockKind kind = BlockKind::kOther;
  double x = 0.0;       ///< lower-left x [m]
  double y = 0.0;       ///< lower-left y [m]
  double width = 0.0;   ///< extent in x [m]
  double height = 0.0;  ///< extent in y [m]

  double area() const noexcept { return width * height; }
  double center_x() const noexcept { return x + width / 2.0; }
  double center_y() const noexcept { return y + height / 2.0; }
};

/// Adjacency record between two blocks sharing a boundary segment.
struct Adjacency {
  std::size_t a = 0;
  std::size_t b = 0;
  double shared_length = 0.0;  ///< length of the common edge [m]
};

class Floorplan {
 public:
  /// Adds a block and returns its index. Throws std::invalid_argument on
  /// non-positive dimensions or duplicate names.
  std::size_t add_block(Block block);

  std::size_t size() const noexcept { return blocks_.size(); }
  const Block& block(std::size_t i) const { return blocks_.at(i); }
  const std::vector<Block>& blocks() const noexcept { return blocks_; }

  /// Index of the block with this name, if any.
  std::optional<std::size_t> find(const std::string& name) const noexcept;

  /// Indices of blocks of the given kind, in insertion order.
  std::vector<std::size_t> blocks_of_kind(BlockKind kind) const;

  /// Total die area = sum of block areas [m^2].
  double total_area() const noexcept;

  /// Bounding box extents [m].
  double bound_width() const noexcept;
  double bound_height() const noexcept;

  /// Throws std::invalid_argument if any two blocks overlap with more than
  /// `tol` of penetration (abutting edges are fine).
  void validate_no_overlap(double tol = 1e-9) const;

  /// All pairs of blocks that share a boundary segment of length > `tol`.
  /// Two blocks are adjacent if they touch along an edge (within `gap_tol`
  /// of separation) with positive overlap extent.
  std::vector<Adjacency> adjacency(double gap_tol = 1e-9) const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace protemp::thermal
