#include "thermal/rc_network.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace protemp::thermal {

void PackageParams::validate() const {
  const auto positive = [](double v, const char* what) {
    if (!(v > 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument(std::string("PackageParams: ") + what +
                                  " must be positive");
    }
  };
  positive(die_thickness, "die_thickness");
  positive(silicon_conductivity, "silicon_conductivity");
  positive(silicon_volumetric_heat, "silicon_volumetric_heat");
  positive(block_capacitance_factor, "block_capacitance_factor");
  positive(tim_resistance_per_area, "tim_resistance_per_area");
  positive(spreader_capacitance, "spreader_capacitance");
  positive(spreader_to_sink_resistance, "spreader_to_sink_resistance");
  positive(sink_capacitance, "sink_capacitance");
  positive(convection_resistance, "convection_resistance");
  if (!std::isfinite(ambient_celsius)) {
    throw std::invalid_argument("PackageParams: ambient must be finite");
  }
}

RcNetwork::RcNetwork(const Floorplan& floorplan, const PackageParams& params) {
  params.validate();
  if (floorplan.size() == 0) {
    throw std::invalid_argument("RcNetwork: empty floorplan");
  }
  floorplan.validate_no_overlap();

  num_blocks_ = floorplan.size();
  const std::size_t n = num_blocks_ + 2;  // + spreader + sink
  // G is assembled into a sparse accumulator (the network couples only
  // adjacent blocks, so it holds ~O(n) nonzeros) and emitted in both CSR
  // and dense form. The accumulator sums duplicate contributions in call
  // order, so the dense view is bitwise identical to the historical
  // dense-+= assembly.
  linalg::SparseBuilder builder(n, n);
  capacitance_ = linalg::Vector(n);
  g_ambient_ = linalg::Vector(n);
  ambient_celsius_ = params.ambient_celsius;

  for (std::size_t i = 0; i < num_blocks_; ++i) {
    names_.push_back(floorplan.block(i).name);
  }
  names_.push_back("spreader");
  names_.push_back("sink");

  const double t = params.die_thickness;
  const double k = params.silicon_conductivity;

  // Block capacitances: volumetric heat times block volume, scaled by the
  // lumping factor (see PackageParams::block_capacitance_factor).
  for (std::size_t i = 0; i < num_blocks_; ++i) {
    capacitance_[i] = params.block_capacitance_factor *
                      params.silicon_volumetric_heat *
                      floorplan.block(i).area() * t;
  }
  capacitance_[spreader_node()] = params.spreader_capacitance;
  capacitance_[sink_node()] = params.sink_capacitance;

  // Lateral conductances: for blocks a, b sharing an edge of length w, the
  // heat path is half of a's extent plus half of b's extent perpendicular to
  // the edge, through cross-section (w * t):
  //   R = (da/2 + db/2) / (k * w * t).
  for (const Adjacency& adj : floorplan.adjacency()) {
    const Block& a = floorplan.block(adj.a);
    const Block& b = floorplan.block(adj.b);
    // Perpendicular extents: if the shared edge is vertical (x-abutting),
    // the path runs along x, so use widths; otherwise use heights.
    const bool vertical_edge =
        std::abs((a.x + a.width) - b.x) <= 1e-9 ||
        std::abs((b.x + b.width) - a.x) <= 1e-9;
    const double da = vertical_edge ? a.width : a.height;
    const double db = vertical_edge ? b.width : b.height;
    const double resistance =
        (da / 2.0 + db / 2.0) / (k * adj.shared_length * t);
    add_conductance(builder, adj.a, adj.b, 1.0 / resistance);
  }

  // Vertical conductances block -> spreader: bulk silicon (half thickness as
  // the heat is generated at the active layer) in series with the TIM,
  // scaled by block area.
  for (std::size_t i = 0; i < num_blocks_; ++i) {
    const double area = floorplan.block(i).area();
    const double r_bulk = (t / 2.0) / (k * area);
    const double r_tim = params.tim_resistance_per_area / area;
    add_conductance(builder, i, spreader_node(), 1.0 / (r_bulk + r_tim));
  }

  // Spreader -> sink and sink -> ambient.
  add_conductance(builder, spreader_node(), sink_node(),
                  1.0 / params.spreader_to_sink_resistance);
  g_ambient_[sink_node()] = 1.0 / params.convection_resistance;
  builder.add(sink_node(), sink_node(), g_ambient_[sink_node()]);

  conductance_ = builder.build_dense();
  conductance_sparse_ = builder.build();
}

void RcNetwork::add_conductance(linalg::SparseBuilder& builder, std::size_t a,
                                std::size_t b, double g) {
  builder.add(a, a, g);
  builder.add(b, b, g);
  builder.add(a, b, -g);
  builder.add(b, a, -g);
}

linalg::Vector RcNetwork::steady_state(const linalg::Vector& power,
                                       linalg::MatrixBackend backend) const {
  if (power.size() != num_nodes()) {
    throw std::invalid_argument("RcNetwork::steady_state: power size mismatch");
  }
  // G T = p + g_amb * T_amb.
  linalg::Vector rhs = power;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    rhs[i] += g_ambient_[i] * ambient_celsius_;
  }
  const linalg::MatrixBackend resolved = linalg::resolve_backend(
      backend, num_nodes(), conductance_sparse_.nnz());
  if (resolved == linalg::MatrixBackend::kSparse) {
    // G is PD (Laplacian plus the ambient leak on the sink diagonal), so
    // the banded sparse Cholesky applies; fall back to dense LU on the
    // numerically pathological packages a caller might construct.
    if (const auto chol = linalg::SparseCholesky::factor(conductance_sparse_)) {
      return chol->solve(rhs);
    }
  }
  return linalg::solve_linear(conductance_, rhs);
}

}  // namespace protemp::thermal
