#include "thermal/floorplan.hpp"

#include <algorithm>
#include <stdexcept>

namespace protemp::thermal {

const char* to_string(BlockKind kind) noexcept {
  switch (kind) {
    case BlockKind::kCore: return "core";
    case BlockKind::kCache: return "cache";
    case BlockKind::kInterconnect: return "interconnect";
    case BlockKind::kOther: return "other";
  }
  return "?";
}

std::size_t Floorplan::add_block(Block block) {
  if (!(block.width > 0.0) || !(block.height > 0.0)) {
    throw std::invalid_argument("Floorplan: block '" + block.name +
                                "' must have positive dimensions");
  }
  if (find(block.name)) {
    throw std::invalid_argument("Floorplan: duplicate block name '" +
                                block.name + "'");
  }
  blocks_.push_back(std::move(block));
  return blocks_.size() - 1;
}

std::optional<std::size_t> Floorplan::find(
    const std::string& name) const noexcept {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> Floorplan::blocks_of_kind(BlockKind kind) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].kind == kind) out.push_back(i);
  }
  return out;
}

double Floorplan::total_area() const noexcept {
  double area = 0.0;
  for (const auto& b : blocks_) area += b.area();
  return area;
}

double Floorplan::bound_width() const noexcept {
  double hi = 0.0;
  for (const auto& b : blocks_) hi = std::max(hi, b.x + b.width);
  return hi;
}

double Floorplan::bound_height() const noexcept {
  double hi = 0.0;
  for (const auto& b : blocks_) hi = std::max(hi, b.y + b.height);
  return hi;
}

namespace {

/// Length of the overlap of intervals [a0, a1] and [b0, b1].
double interval_overlap(double a0, double a1, double b0, double b1) noexcept {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

void Floorplan::validate_no_overlap(double tol) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      const double ox =
          interval_overlap(a.x, a.x + a.width, b.x, b.x + b.width);
      const double oy =
          interval_overlap(a.y, a.y + a.height, b.y, b.y + b.height);
      if (ox > tol && oy > tol) {
        throw std::invalid_argument("Floorplan: blocks '" + a.name +
                                    "' and '" + b.name + "' overlap");
      }
    }
  }
}

std::vector<Adjacency> Floorplan::adjacency(double gap_tol) const {
  std::vector<Adjacency> out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      const Block& a = blocks_[i];
      const Block& b = blocks_[j];
      // Vertical shared edge: a's right against b's left (or vice versa).
      const double oy =
          interval_overlap(a.y, a.y + a.height, b.y, b.y + b.height);
      const double ox =
          interval_overlap(a.x, a.x + a.width, b.x, b.x + b.width);
      const bool touch_x =
          std::abs((a.x + a.width) - b.x) <= gap_tol ||
          std::abs((b.x + b.width) - a.x) <= gap_tol;
      const bool touch_y =
          std::abs((a.y + a.height) - b.y) <= gap_tol ||
          std::abs((b.y + b.height) - a.y) <= gap_tol;
      if (touch_x && oy > gap_tol) {
        out.push_back({i, j, oy});
      } else if (touch_y && ox > gap_tol) {
        out.push_back({i, j, ox});
      }
    }
  }
  return out;
}

}  // namespace protemp::thermal
