#include "store/interpolated_policy.hpp"

namespace protemp::store {

linalg::Vector InterpolatedProTempPolicy::on_window(
    const sim::ControllerView& view) {
  ++stats_.windows;
  const double temperature = view.max_sensor_temp();
  const double required = sim::required_average_frequency(view);
  const InterpolatedTable::Served served = table_.query(temperature, required);
  if (served.emergency) ++stats_.emergencies;
  if (served.downgraded) ++stats_.downgrades;
  if (served.interpolated) ++stats_.interpolated;
  if (!served.feasible) {
    // No safe assignment at this temperature: shut the cores down for one
    // window, exactly the plain table policy's guaranteed-safe action.
    return linalg::Vector(view.num_cores, 0.0);
  }
  return served.frequencies;
}

std::any InterpolatedProTempPolicy::save_state() const { return stats_; }

void InterpolatedProTempPolicy::load_state(const std::any& state) {
  stats_ = sim::policy_state_as<Stats>(state, "InterpolatedProTempPolicy");
}

}  // namespace protemp::store
