#include "store/table_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <thread>

#include "store/format.hpp"
#include "util/strings.hpp"

namespace protemp::store {
namespace {

using api::Status;
using api::StatusOr;

namespace fs = std::filesystem;

/// Probe bound for open addressing: 64 same-hash keys live in one store
/// before lookup gives up — far beyond any plausible 64-bit collision
/// count; the bound only keeps a pathological directory from looping.
constexpr std::size_t kMaxProbes = 64;

/// A writer lock older than this is a crashed builder's leftover; waiters
/// give up on it and gc() reclaims it.
constexpr double kStaleLockSeconds = 120.0;

/// First metadata line of an artifact is its full identity key.
std::string_view metadata_key(std::string_view metadata) {
  const std::size_t eol = metadata.find('\n');
  return eol == std::string_view::npos ? metadata : metadata.substr(0, eol);
}

double file_age_seconds(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0.0;
  return std::difftime(std::time(nullptr), st.st_mtime);
}

/// RAII over the O_CREAT|O_EXCL lock file.
class WriterLock {
 public:
  explicit WriterLock(std::string path) : path_(std::move(path)) {}
  ~WriterLock() { release(); }

  /// One acquisition attempt; true when this caller now holds the lock.
  bool try_acquire() {
    const int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return false;
    ::close(fd);
    held_ = true;
    return true;
  }

  void release() {
    if (held_) {
      std::remove(path_.c_str());
      held_ = false;
    }
  }

 private:
  std::string path_;
  bool held_ = false;
};

}  // namespace

api::StatusOr<std::shared_ptr<TableStore>> TableStore::open(
    const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::invalid_argument("table store: cannot create " + root +
                                    ": " + ec.message());
  }
  // Fail fast on an unwritable root (read-only mount, permissions): the
  // probe file exercises the exact create-and-rename path put() needs.
  const std::string probe =
      root + "/.probe." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(probe.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::invalid_argument("table store: " + root +
                                    " is not writable: " +
                                    std::strerror(errno));
  }
  ::close(fd);
  std::remove(probe.c_str());
  return std::shared_ptr<TableStore>(new TableStore(root));
}

std::string TableStore::slot_path(const std::string& key,
                                  std::size_t slot) const {
  return root_ + "/" +
         util::format("%016llx-%zu.ptbl",
                      static_cast<unsigned long long>(util::fnv1a64(key)),
                      slot);
}

std::string TableStore::lock_path(const std::string& key) const {
  return root_ + "/" +
         util::format("%016llx.lock",
                      static_cast<unsigned long long>(util::fnv1a64(key)));
}

bool TableStore::find_slot(const std::string& key,
                           std::string* found_path) const {
  for (std::size_t slot = 0; slot < kMaxProbes; ++slot) {
    const std::string path = slot_path(key, slot);
    std::error_code ec;
    if (!fs::exists(path, ec)) return false;  // first gap ends the probe
    StatusOr<TableView> view = TableView::open(path);
    // Invalid artifact: skip the slot (it may shadow a valid later one
    // written after a collision) — verify_all/gc own the cleanup.
    if (!view.ok()) continue;
    if (metadata_key(view->metadata()) != key) continue;
    if (found_path != nullptr) *found_path = path;
    return true;
  }
  return false;
}

api::StatusOr<core::FrequencyTable> TableStore::load(
    const std::string& key) const {
  std::string path;
  if (!find_slot(key, &path)) {
    return Status::not_found("table store: no valid artifact for key");
  }
  return load_table(path, nullptr);
}

bool TableStore::contains(const std::string& key) const {
  return find_slot(key, nullptr);
}

api::Status TableStore::put(const std::string& key,
                            const core::FrequencyTable& table,
                            const std::string& provenance) {
  std::string metadata = key + "\n";
  metadata += util::format("rows = %zu\ncols = %zu\ncores = %zu\n",
                           table.rows(), table.cols(), table.num_cores());
  if (!table.core_fmax().empty()) {
    // v2: heterogeneous per-core axes, restored by TableView::materialize.
    metadata += std::string(kCoreFmaxMetaPrefix);
    for (std::size_t c = 0; c < table.core_fmax().size(); ++c) {
      if (c != 0) metadata += ",";
      metadata += util::format("%.17g", table.core_fmax()[c]);
    }
    metadata += "\n";
  }
  if (!provenance.empty()) {
    metadata += provenance;
    if (provenance.back() != '\n') metadata += '\n';
  }
  // Slot choice: reuse the slot already holding this key, else the first
  // slot that is missing or invalid (an invalid file is dead weight — a
  // fresh valid artifact may claim it).
  for (std::size_t slot = 0; slot < kMaxProbes; ++slot) {
    const std::string path = slot_path(key, slot);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      StatusOr<TableView> view = TableView::open(path);
      if (view.ok() && metadata_key(view->metadata()) != key) continue;
    }
    return save_table(table, metadata, path);
  }
  return Status::internal("table store: probe chain exhausted for key");
}

api::StatusOr<core::FrequencyTable> TableStore::get_or_build(
    const std::string& key, const Builder& builder, bool* built) {
  if (built != nullptr) *built = false;
  {
    StatusOr<core::FrequencyTable> hit = load(key);
    if (hit.ok()) return hit;
  }
  WriterLock lock(lock_path(key));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(kStaleLockSeconds);
  while (!lock.try_acquire()) {
    // Another builder holds the key: poll for its published artifact.
    StatusOr<core::FrequencyTable> hit = load(key);
    if (hit.ok()) return hit;
    if (file_age_seconds(lock_path(key)) > kStaleLockSeconds ||
        std::chrono::steady_clock::now() > deadline) {
      // Crashed builder: reclaim the lock and build here.
      std::remove(lock_path(key).c_str());
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Holding the lock. Re-check: the previous holder may have published
  // between our miss and the acquisition.
  {
    StatusOr<core::FrequencyTable> hit = load(key);
    if (hit.ok()) return hit;
  }
  try {
    core::FrequencyTable table = builder();
    if (Status s = put(key, table); !s.ok()) return s;
    if (built != nullptr) *built = true;
    return table;
  } catch (const std::exception& e) {
    return Status::internal(std::string("table store build failed: ") +
                            e.what());
  }
}

std::vector<TableStore::EntryInfo> TableStore::list() const {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(root_, ec)) {
    const std::string file = dirent.path().filename().string();
    if (file.size() < 5 || file.substr(file.size() - 5) != ".ptbl") continue;
    EntryInfo info;
    info.file = file;
    std::error_code size_ec;
    info.bytes = static_cast<std::uint64_t>(
        fs::file_size(dirent.path(), size_ec));
    StatusOr<TableView> view = TableView::open(dirent.path().string());
    if (view.ok()) {
      info.valid = true;
      info.key = std::string(metadata_key(view->metadata()));
      info.rows = view->rows();
      info.cols = view->cols();
      info.num_cores = view->num_cores();
    } else {
      info.error = view.status().message();
    }
    entries.push_back(std::move(info));
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              return a.file < b.file;
            });
  return entries;
}

api::Status TableStore::verify_all(std::vector<std::string>* errors) const {
  std::size_t bad = 0;
  for (const EntryInfo& entry : list()) {
    if (entry.valid) continue;
    ++bad;
    if (errors != nullptr) {
      errors->push_back(entry.file + ": " + entry.error);
    }
  }
  if (bad != 0) {
    return Status::failed_precondition(
        util::format("table store: %zu invalid artifact(s) under %s", bad,
                     root_.c_str()));
  }
  return Status();
}

api::StatusOr<std::size_t> TableStore::gc() {
  std::size_t removed = 0;
  std::error_code ec;
  std::vector<std::string> doomed;
  for (const auto& dirent : fs::directory_iterator(root_, ec)) {
    const std::string path = dirent.path().string();
    const std::string file = dirent.path().filename().string();
    if (file.size() > 4 && file.substr(file.size() - 4) == ".tmp") {
      doomed.push_back(path);  // torn publish (writer died mid-save)
    } else if (file.size() > 5 && file.substr(file.size() - 5) == ".lock") {
      if (file_age_seconds(path) > kStaleLockSeconds) doomed.push_back(path);
    } else if (file.size() > 5 &&
               file.substr(file.size() - 5) == ".ptbl") {
      if (!TableView::open(path).ok()) doomed.push_back(path);
    }
  }
  if (ec) {
    return Status::internal("table store: cannot scan " + root_ + ": " +
                            ec.message());
  }
  for (const std::string& path : doomed) {
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace protemp::store
