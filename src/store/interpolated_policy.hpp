// Phase-2 serving from a bounded-error coarse grid.
//
// InterpolatedProTempPolicy is ProTempPolicy with the InterpolatedTable
// lookup in place of the raw table query: the same max-sensor-temperature /
// required-frequency key, the same shut-down-on-infeasible fallback, but
// cells may be served as a certified blend of two coarse cells. A serving
// session reaches it through `opt.table_interp_stride > 1`, which decimates
// the (cache- or store-resident) fine table at policy construction and
// requires the certified error to fit under the control loop's frequency
// quantum — so the coarse grid can never move a post-quantization command
// by more than one step.
#pragma once

#include <any>
#include <cstddef>
#include <string>

#include "sim/policies.hpp"
#include "store/interpolated_table.hpp"

namespace protemp::store {

class InterpolatedProTempPolicy final : public sim::DfsPolicy {
 public:
  struct Stats {
    std::size_t windows = 0;
    std::size_t emergencies = 0;   ///< sensor above the table's top row
    std::size_t downgrades = 0;    ///< served below the requested target
    std::size_t interpolated = 0;  ///< windows served as a two-cell blend
  };

  explicit InterpolatedProTempPolicy(InterpolatedTable table)
      : table_(std::move(table)) {}

  std::string name() const override { return "pro-temp-interp"; }
  void reset() override { stats_ = {}; }
  linalg::Vector on_window(const sim::ControllerView& view) override;
  std::any save_state() const override;
  void load_state(const std::any& state) override;

  const Stats& stats() const noexcept { return stats_; }
  const InterpolatedTable& table() const noexcept { return table_; }

 private:
  InterpolatedTable table_;
  Stats stats_;
};

}  // namespace protemp::store
