// Directory-backed persistent tier for Phase-1 frequency tables.
//
// A TableStore maps the exact TableCache identity key (platform key +
// ProTempConfig + backend + grids — see api::table_identity_key) to one
// binary artifact (store/format.hpp) under a root directory:
//
//   <root>/<fnv1a64(key) as 16 hex>-<slot>.ptbl
//
// Collisions are resolved by open addressing on <slot>: lookup probes
// slots 0, 1, 2, ... comparing the full key stored on the artifact's
// first metadata line, and stops at the first missing slot. A file that
// fails validation (truncated, bit-flipped, stale format version) is
// treated as absent for serving — never served, reported by verify_all,
// reclaimed by gc.
//
// Cross-process build dedup: get_or_build takes a per-key writer lock
// (O_CREAT|O_EXCL lock file) around the miss path, so N processes cold-
// starting the same configuration run exactly one grid of solves between
// them; the others wait on the lock and load the published artifact.
// Publication itself is atomic (temp+rename in save_table), so readers
// that skip the lock still never observe a torn file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "core/frequency_table.hpp"

namespace protemp::store {

class TableStore {
 public:
  using Builder = std::function<core::FrequencyTable()>;

  /// Opens (creating if needed) the store rooted at `root`. The directory
  /// must be creatable and writable; fails fast otherwise so a misspelled
  /// path surfaces at configuration time, not at the first build.
  static api::StatusOr<std::shared_ptr<TableStore>> open(
      const std::string& root);

  const std::string& root() const noexcept { return root_; }

  /// Loads the table stored under `key`; NotFound on a miss (including
  /// "only invalid artifacts present").
  api::StatusOr<core::FrequencyTable> load(const std::string& key) const;

  /// True when a valid artifact for `key` exists.
  bool contains(const std::string& key) const;

  /// Publishes `table` under `key` (atomic; an existing valid artifact
  /// for the key is replaced in place — same key means same contents up
  /// to solver determinism).
  api::Status put(const std::string& key, const core::FrequencyTable& table,
                  const std::string& provenance = std::string());

  /// Hit: loads. Miss: takes the per-key writer lock, re-checks (the lock
  /// holder may have published meanwhile), builds, publishes, releases.
  /// `*built` (optional) reports whether the builder ran in this call.
  api::StatusOr<core::FrequencyTable> get_or_build(const std::string& key,
                                                   const Builder& builder,
                                                   bool* built = nullptr);

  struct EntryInfo {
    std::string file;   ///< artifact filename under root
    bool valid = false;
    std::string key;    ///< full identity key (valid artifacts)
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t num_cores = 0;
    std::uint64_t bytes = 0;
    std::string error;  ///< open/validation failure (invalid artifacts)
  };

  /// Every *.ptbl under the root, valid or not, sorted by filename.
  std::vector<EntryInfo> list() const;

  /// Ok when every artifact validates; FailedPrecondition otherwise, with
  /// one "file: reason" line per bad artifact appended to `errors`.
  api::Status verify_all(std::vector<std::string>* errors = nullptr) const;

  /// Removes invalid artifacts, orphaned temp files and stale writer
  /// locks (lock files older than 120 s — a crashed builder). Returns the
  /// number of files removed.
  api::StatusOr<std::size_t> gc();

 private:
  explicit TableStore(std::string root) : root_(std::move(root)) {}

  std::string slot_path(const std::string& key, std::size_t slot) const;
  std::string lock_path(const std::string& key) const;
  /// First slot holding `key` (probing stops at a missing slot);
  /// `*found_path` receives the path on a hit.
  bool find_slot(const std::string& key, std::string* found_path) const;

  std::string root_;
};

}  // namespace protemp::store
