#include "store/interpolated_table.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/strings.hpp"

namespace protemp::store {
namespace {

using api::Status;
using api::StatusOr;

/// Kept indices when decimating an n-point axis by `stride`: every
/// stride-th point plus the endpoint, so the coarse axis spans the fine
/// one exactly (a shrunken span would turn servable temperatures into
/// emergencies).
std::vector<std::size_t> strided_indices(std::size_t n, std::size_t stride) {
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < n; i += stride) kept.push_back(i);
  if (kept.back() != n - 1) kept.push_back(n - 1);
  return kept;
}

InterpolatedTable::Served served_from_entry(
    const core::FrequencyTable::Entry& entry, bool downgraded) {
  InterpolatedTable::Served out;
  out.feasible = true;
  out.downgraded = downgraded;
  out.frequencies = entry.frequencies;
  out.average_frequency = entry.average_frequency;
  out.total_power = entry.total_power;
  return out;
}

}  // namespace

api::StatusOr<InterpolatedTable> InterpolatedTable::build(
    const core::FrequencyTable& fine, std::size_t tstart_stride,
    std::size_t ftarget_stride, double max_error_hz) {
  if (tstart_stride == 0 || ftarget_stride == 0) {
    return Status::invalid_argument(
        "InterpolatedTable: strides must be >= 1");
  }
  if (!(max_error_hz >= 0.0)) {  // also rejects NaN
    return Status::invalid_argument(
        "InterpolatedTable: max_error_hz must be finite and >= 0");
  }
  const std::vector<std::size_t> rows =
      strided_indices(fine.rows(), tstart_stride);
  const std::vector<std::size_t> cols =
      strided_indices(fine.cols(), ftarget_stride);
  std::vector<double> tstart, ftarget;
  for (const std::size_t r : rows) tstart.push_back(fine.tstart_grid()[r]);
  for (const std::size_t c : cols) ftarget.push_back(fine.ftarget_grid()[c]);

  core::FrequencyTable coarse(std::move(tstart), std::move(ftarget),
                              fine.num_cores());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto& cell = fine.cell(rows[r], cols[c]);
      if (cell) coarse.set_cell(r, c, *cell);
    }
  }
  InterpolatedTable table(std::move(coarse));

  // Certification sweep: the fine table is the refinement probe. Every
  // fine grid point is a query both tables can answer; where both serve
  // without downgrade the served averages must agree to the bound.
  double max_error = 0.0;
  std::size_t downgrades = 0;
  for (std::size_t r = 0; r < fine.rows(); ++r) {
    const double temp = fine.tstart_grid()[r];
    for (std::size_t c = 0; c < fine.cols(); ++c) {
      const double required = fine.ftarget_grid()[c];
      const core::FrequencyTable::QueryResult fine_q =
          fine.query(temp, required);
      if (fine_q.entry == nullptr || fine_q.downgraded || fine_q.emergency) {
        continue;  // the fine table itself cannot serve this point
      }
      const Served coarse_q = table.query(temp, required);
      if (!coarse_q.feasible || coarse_q.downgraded) {
        ++downgrades;
        continue;
      }
      // Round-up invariant: an undowngraded serve may never under-deliver
      // (tiny slack for the blend arithmetic).
      if (coarse_q.average_frequency < required - 1e-6) {
        return Status::internal(util::format(
            "InterpolatedTable: served %.3f MHz below the required %.3f MHz "
            "at t=%.17g",
            coarse_q.average_frequency / 1e6, required / 1e6, temp));
      }
      max_error = std::max(
          max_error,
          std::abs(coarse_q.average_frequency - fine_q.entry->average_frequency));
    }
  }
  if (max_error > max_error_hz) {
    return Status::failed_precondition(util::format(
        "InterpolatedTable: certified error %.3f MHz exceeds the %.3f MHz "
        "bound (strides %zu x %zu too coarse for this grid)",
        max_error / 1e6, max_error_hz / 1e6, tstart_stride, ftarget_stride));
  }
  table.certified_error_hz_ = max_error;
  table.certified_downgrades_ = downgrades;
  return table;
}

InterpolatedTable::Served InterpolatedTable::query(double temperature_celsius,
                                                   double required_hz) const {
  Served out;
  const std::vector<double>& tgrid = coarse_.tstart_grid();
  const std::vector<double>& fgrid = coarse_.ftarget_grid();

  // Temperature: same conservative round-up as the plain table.
  const auto row_it =
      std::lower_bound(tgrid.begin(), tgrid.end(), temperature_celsius);
  if (row_it == tgrid.end()) {
    out.emergency = true;
    return out;
  }
  const std::size_t row = static_cast<std::size_t>(row_it - tgrid.begin());

  const auto col_it =
      std::lower_bound(fgrid.begin(), fgrid.end(), required_hz);
  const auto plain_fallback = [&]() {
    // Any bracket touching an infeasible or out-of-grid cell degrades to
    // the plain round-up/walk-down lookup — never a blend.
    const core::FrequencyTable::QueryResult q =
        coarse_.query(temperature_celsius, required_hz);
    if (q.entry == nullptr) {
      Served empty;
      empty.emergency = q.emergency;
      empty.downgraded = q.downgraded;
      return empty;
    }
    return served_from_entry(*q.entry, q.downgraded);
  };

  if (col_it == fgrid.end()) return plain_fallback();  // beyond the grid
  const std::size_t hi = static_cast<std::size_t>(col_it - fgrid.begin());
  const auto& cell_hi = coarse_.cell(row, hi);
  if (!cell_hi) return plain_fallback();
  if (hi == 0) return served_from_entry(*cell_hi, false);
  const auto& cell_lo = coarse_.cell(row, hi - 1);
  if (!cell_lo) return served_from_entry(*cell_hi, false);

  const double avg_lo = cell_lo->average_frequency;
  const double avg_hi = cell_hi->average_frequency;
  if (required_hz <= avg_lo) {
    // The lower cell already over-delivers; it is the cooler of the two
    // feasible answers that satisfy the request.
    return served_from_entry(*cell_lo, false);
  }
  double alpha = (required_hz - avg_lo) / (avg_hi - avg_lo);
  alpha = std::clamp(alpha, 0.0, 1.0);

  out.feasible = true;
  out.interpolated = true;
  out.frequencies = linalg::Vector(coarse_.num_cores());
  for (std::size_t k = 0; k < coarse_.num_cores(); ++k) {
    out.frequencies[k] = (1.0 - alpha) * cell_lo->frequencies[k] +
                         alpha * cell_hi->frequencies[k];
  }
  out.average_frequency = (1.0 - alpha) * avg_lo + alpha * avg_hi;
  // Convexity makes the blend of endpoint powers an upper bound on the
  // blended vector's true power; report the bound (conservative).
  out.total_power =
      (1.0 - alpha) * cell_lo->total_power + alpha * cell_hi->total_power;
  return out;
}

}  // namespace protemp::store
