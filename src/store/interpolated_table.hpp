// Bounded-error serving from a coarse Phase-1 grid.
//
// A fine ftarget grid for a 256-core mesh is big (cells carry a per-core
// vector) and slow to build; InterpolatedTable serves the same queries
// from a strided coarse grid with a *certified* error bound, staying on
// the conservative side of every axis:
//
//   * temperature rounds UP to the next coarse row (hotter assumed state,
//     exactly the plain table's rule);
//   * the required frequency is bracketed by two *feasible* coarse cells
//     in that row and served as their linear interpolation, with the
//     blend chosen so the served average equals the request;
//   * any bracket touching an infeasible cell falls back to the plain
//     round-up/walk-down lookup — interpolation never manufactures
//     feasibility.
//
// Conservativeness (DESIGN.md §6e): core power is convex in frequency
// (~f·V², V monotone in f), so the interpolated vector's power is at most
// the same blend of the endpoint powers; the thermal horizon map is
// linear and monotone in power, so its temperature trajectory is bounded
// by the blend of two trajectories that each respect tmax. A blend of
// feasible cells is therefore feasible.
//
// build() certifies the bound: every fine grid point is served through
// the coarse table and compared against the fine table's own answer; the
// max |served - fine| average-frequency error must be within
// `max_error_hz` or construction fails with the measured bound in the
// Status. bench_table_store gates this at 2 MHz for mesh:4x4.
#pragma once

#include <cstddef>
#include <string>

#include "api/status.hpp"
#include "core/frequency_table.hpp"
#include "linalg/vector.hpp"

namespace protemp::store {

class InterpolatedTable {
 public:
  /// Decimates `fine` by keeping every `tstart_stride`-th row and every
  /// `ftarget_stride`-th column (both endpoints always kept, so coverage
  /// never shrinks), then certifies the served-frequency error of the
  /// coarse grid against `fine` at every fine grid point. Fails with
  /// FailedPrecondition (carrying the measured error) when the bound is
  /// exceeded; strides must be >= 1.
  static api::StatusOr<InterpolatedTable> build(
      const core::FrequencyTable& fine, std::size_t tstart_stride,
      std::size_t ftarget_stride, double max_error_hz);

  const core::FrequencyTable& coarse() const noexcept { return coarse_; }

  /// Max |interpolated - fine| served average frequency [Hz] measured at
  /// certification time over every mutually-feasible fine grid point.
  double certified_error_hz() const noexcept { return certified_error_hz_; }

  /// Fine grid points where the coarse table had to downgrade (serve a
  /// lower target) though the fine table did not — the price of
  /// feasibility-preserving conservatism, surfaced for inspection.
  std::size_t certified_downgrades() const noexcept {
    return certified_downgrades_;
  }

  struct Served {
    bool feasible = false;      ///< false => shut everything down
    bool emergency = false;     ///< temperature above the top grid row
    bool downgraded = false;    ///< served below the requested target
    bool interpolated = false;  ///< blend of two cells (vs a raw cell)
    linalg::Vector frequencies;
    double average_frequency = 0.0;  ///< [Hz]
    double total_power = 0.0;        ///< [W] (upper bound when blended)
  };

  /// Conservative lookup (see file comment). Mirrors
  /// core::FrequencyTable::query flag semantics.
  Served query(double temperature_celsius, double required_hz) const;

 private:
  explicit InterpolatedTable(core::FrequencyTable coarse)
      : coarse_(std::move(coarse)) {}

  core::FrequencyTable coarse_;
  double certified_error_hz_ = 0.0;
  std::size_t certified_downgrades_ = 0;
};

}  // namespace protemp::store
