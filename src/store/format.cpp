#include "store/format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace protemp::store {
namespace {

using api::Status;
using api::StatusOr;

constexpr std::size_t kHeaderBytes = sizeof(TableFileHeader);
// header_crc covers every field before it in the wire layout.
constexpr std::size_t kHeaderCrcSpan = offsetof(TableFileHeader, header_crc);
static_assert(kHeaderCrcSpan == 72, "header_crc must be the trailing field");

std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::size_t bitmap_bytes(std::size_t cells) { return pad8((cells + 7) / 8); }

/// Bytes of one dense cell record: average_frequency, total_power, then
/// the per-core frequency vector.
std::size_t cell_record_doubles(std::size_t num_cores) {
  return 2 + num_cores;
}

std::size_t payload_size(std::size_t rows, std::size_t cols,
                         std::size_t num_cores) {
  return rows * 8 + cols * 8 + bitmap_bytes(rows * cols) +
         rows * cols * cell_record_doubles(num_cores) * 8;
}

Status anchored(const std::string& path, const std::string& what) {
  return Status::invalid_argument(path + ": " + what);
}

/// Extracts the per-core frequency axes from a v2 metadata blob (the
/// `core-fmax-hz = f0,f1,...` line); empty when absent. Throws on a
/// malformed number — a het artifact must restore its axes or fail loudly,
/// never load as silently homogeneous.
std::vector<double> parse_core_fmax_meta(std::string_view metadata) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= metadata.size()) {
    const std::size_t eol = metadata.find('\n', pos);
    const std::string_view line = metadata.substr(
        pos,
        eol == std::string_view::npos ? metadata.size() - pos : eol - pos);
    if (line.rfind(kCoreFmaxMetaPrefix, 0) == 0) {
      std::string_view list = line.substr(kCoreFmaxMetaPrefix.size());
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view item =
            comma == std::string_view::npos ? list : list.substr(0, comma);
        out.push_back(util::parse_double(item));
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
      return out;
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

Status check_loaded_grid(const std::string& path, const char* what,
                         const double* grid, std::size_t n) {
  // CRCs catch torn bytes, not a buggy writer: grids are re-validated at
  // open so a NaN or non-monotone axis can never reach an online query.
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(grid[i])) {
      return anchored(path, std::string(what) + " has a non-finite value");
    }
    if (i > 0 && !(grid[i] > grid[i - 1])) {
      return anchored(path,
                      std::string(what) + " is not strictly increasing");
    }
  }
  return Status();
}

}  // namespace

// ------------------------------------------------------------------ save --

api::Status save_table(const core::FrequencyTable& table,
                       std::string_view metadata, const std::string& path) {
  const std::size_t rows = table.rows();
  const std::size_t cols = table.cols();
  const std::size_t cores = table.num_cores();

  const std::size_t meta_padded = pad8(metadata.size());
  const std::size_t payload_bytes = payload_size(rows, cols, cores);

  TableFileHeader header{};
  std::memcpy(header.magic, kTableMagic, sizeof(kTableMagic));
  header.version = kTableFormatVersion;
  header.num_cores32 = static_cast<std::uint32_t>(cores);
  header.rows = rows;
  header.cols = cols;
  header.meta_offset = kHeaderBytes;
  header.meta_bytes = metadata.size();
  header.payload_offset = kHeaderBytes + meta_padded;
  header.payload_bytes = payload_bytes;

  // Assemble the payload in memory: grids, feasibility bitmap, dense cells.
  std::vector<unsigned char> payload(payload_bytes, 0);
  unsigned char* p = payload.data();
  std::memcpy(p, table.tstart_grid().data(), rows * 8);
  p += rows * 8;
  std::memcpy(p, table.ftarget_grid().data(), cols * 8);
  p += cols * 8;
  unsigned char* bitmap = p;
  p += bitmap_bytes(rows * cols);
  double* cell = reinterpret_cast<double*>(p);
  const std::size_t record = cell_record_doubles(cores);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t idx = r * cols + c;
      const auto& entry = table.cell(r, c);
      double* out = cell + idx * record;
      if (entry) {
        bitmap[idx / 8] |= static_cast<unsigned char>(1u << (idx % 8));
        out[0] = entry->average_frequency;
        out[1] = entry->total_power;
        for (std::size_t k = 0; k < cores; ++k) {
          out[2 + k] = entry->frequencies[k];
        }
      }
    }
  }

  header.meta_crc =
      util::crc32(metadata.data(), metadata.size());
  header.payload_crc = util::crc32(payload.data(), payload.size());
  header.header_crc = util::crc32(&header, kHeaderCrcSpan);

  // Unique temp name: concurrent writers (threads or processes) must never
  // interleave bytes into one temp file; rename() then publishes whichever
  // complete artifact lands last.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = util::format(
      "%s.%d.%llu.tmp", path.c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(
          counter.fetch_add(1, std::memory_order_relaxed)));

  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::invalid_argument("save_table: cannot open " + tmp +
                                    " for writing");
  }
  out.write(reinterpret_cast<const char*>(&header), kHeaderBytes);
  out.write(metadata.data(),
            static_cast<std::streamsize>(metadata.size()));
  const char zeros[8] = {};
  out.write(zeros,
            static_cast<std::streamsize>(meta_padded - metadata.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  out.close();
  if (!out) {
    std::remove(tmp.c_str());
    return Status::internal("save_table: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::internal("save_table: rename to " + path + " failed: " +
                            std::strerror(err));
  }
  return Status();
}

// ------------------------------------------------------------- TableView --

TableView::TableView(TableView&& other) noexcept { *this = std::move(other); }

TableView& TableView::operator=(TableView&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, mapping_bytes_);
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapping_bytes_ = std::exchange(other.mapping_bytes_, 0);
    version_ = other.version_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    num_cores_ = other.num_cores_;
    tstart_ = std::exchange(other.tstart_, nullptr);
    ftarget_ = std::exchange(other.ftarget_, nullptr);
    bitmap_ = std::exchange(other.bitmap_, nullptr);
    cells_ = std::exchange(other.cells_, nullptr);
    metadata_ = std::exchange(other.metadata_, std::string_view());
  }
  return *this;
}

TableView::~TableView() {
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_bytes_);
}

api::StatusOr<TableView> TableView::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::not_found(path + ": cannot open: " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s =
        Status::internal(path + ": fstat failed: " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const std::size_t file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return anchored(path, "truncated (shorter than the header)");
  }
  void* mapping = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (mapping == MAP_FAILED) {
    return Status::internal(path + ": mmap failed: " + std::strerror(errno));
  }
  TableView view;
  view.mapping_ = mapping;
  view.mapping_bytes_ = file_bytes;

  TableFileHeader header;
  std::memcpy(&header, mapping, kHeaderBytes);

  // Validation order is the diagnosis order: identity, then version (an
  // explicit "unsupported version" beats a CRC mismatch for a future
  // format), then integrity, then bounds, then section checksums.
  if (std::memcmp(header.magic, kTableMagic, sizeof(kTableMagic)) != 0) {
    return anchored(path, "not a protemp table file (bad magic)");
  }
  if (header.version < kMinTableFormatVersion ||
      header.version > kTableFormatVersion) {
    return anchored(
        path, util::format("unsupported format version %u (this build reads "
                           "versions %u through %u)",
                           header.version, kMinTableFormatVersion,
                           kTableFormatVersion));
  }
  if (util::crc32(mapping, kHeaderCrcSpan) != header.header_crc) {
    return anchored(path, "header CRC mismatch (corrupt header)");
  }
  if (header.rows == 0 || header.cols == 0 || header.num_cores32 == 0) {
    return anchored(path, "empty grid or zero cores in header");
  }
  // Shape sanity caps keep the size arithmetic below far from overflow.
  if (header.rows > (1u << 20) || header.cols > (1u << 20) ||
      header.num_cores32 > (1u << 20) ||
      header.rows * header.cols > (1u << 28)) {
    return anchored(path, "implausible table shape in header");
  }
  const std::size_t rows = header.rows;
  const std::size_t cols = header.cols;
  const std::size_t cores = header.num_cores32;
  if (header.meta_offset != kHeaderBytes ||
      header.payload_offset != kHeaderBytes + pad8(header.meta_bytes) ||
      header.payload_bytes != payload_size(rows, cols, cores) ||
      header.payload_offset + header.payload_bytes > file_bytes) {
    return anchored(path, "section layout does not match header (truncated "
                          "or corrupt file)");
  }
  const auto* base = static_cast<const unsigned char*>(mapping);
  const unsigned char* meta = base + header.meta_offset;
  const unsigned char* payload = base + header.payload_offset;
  if (util::crc32(meta, header.meta_bytes) != header.meta_crc) {
    return anchored(path, "metadata CRC mismatch");
  }
  if (util::crc32(payload, header.payload_bytes) != header.payload_crc) {
    return anchored(path, "payload CRC mismatch");
  }

  view.version_ = header.version;
  view.rows_ = rows;
  view.cols_ = cols;
  view.num_cores_ = cores;
  view.metadata_ = std::string_view(reinterpret_cast<const char*>(meta),
                                    header.meta_bytes);
  view.tstart_ = reinterpret_cast<const double*>(payload);
  view.ftarget_ = view.tstart_ + rows;
  view.bitmap_ = reinterpret_cast<const unsigned char*>(view.ftarget_ + cols);
  view.cells_ = reinterpret_cast<const double*>(view.bitmap_ +
                                                bitmap_bytes(rows * cols));

  if (Status s = check_loaded_grid(path, "tstart grid", view.tstart_, rows);
      !s.ok()) {
    return s;
  }
  if (Status s = check_loaded_grid(path, "ftarget grid", view.ftarget_, cols);
      !s.ok()) {
    return s;
  }
  return view;
}

std::size_t TableView::cell_index(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("TableView: cell index out of range");
  }
  return row * cols_ + col;
}

bool TableView::feasible(std::size_t row, std::size_t col) const {
  const std::size_t idx = cell_index(row, col);
  return (bitmap_[idx / 8] >> (idx % 8)) & 1u;
}

double TableView::average_frequency(std::size_t row, std::size_t col) const {
  return cells_[cell_index(row, col) * (2 + num_cores_)];
}

double TableView::total_power(std::size_t row, std::size_t col) const {
  return cells_[cell_index(row, col) * (2 + num_cores_) + 1];
}

const double* TableView::frequencies(std::size_t row, std::size_t col) const {
  return cells_ + cell_index(row, col) * (2 + num_cores_) + 2;
}

std::size_t TableView::feasible_cells() const noexcept {
  std::size_t count = 0;
  for (std::size_t idx = 0; idx < rows_ * cols_; ++idx) {
    count += (bitmap_[idx / 8] >> (idx % 8)) & 1u;
  }
  return count;
}

core::FrequencyTable TableView::materialize() const {
  core::FrequencyTable table(
      std::vector<double>(tstart_, tstart_ + rows_),
      std::vector<double>(ftarget_, ftarget_ + cols_), num_cores_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (!feasible(r, c)) continue;
      core::FrequencyTable::Entry entry;
      entry.average_frequency = average_frequency(r, c);
      entry.total_power = total_power(r, c);
      entry.frequencies = linalg::Vector(num_cores_);
      const double* f = frequencies(r, c);
      for (std::size_t k = 0; k < num_cores_; ++k) entry.frequencies[k] = f[k];
      table.set_cell(r, c, std::move(entry));
    }
  }
  std::vector<double> core_fmax = parse_core_fmax_meta(metadata_);
  if (!core_fmax.empty()) table.set_core_fmax(std::move(core_fmax));
  return table;
}

// ------------------------------------------------------------------ load --

api::StatusOr<core::FrequencyTable> load_table(const std::string& path,
                                               std::string* metadata) {
  StatusOr<TableView> view = TableView::open(path);
  if (!view.ok()) return view.status();
  if (metadata != nullptr) *metadata = std::string(view->metadata());
  try {
    return view->materialize();
  } catch (const std::exception& e) {
    return Status::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace protemp::store
