// Versioned binary on-disk format for core::FrequencyTable artifacts.
//
// Layout (little-endian, 8-byte-aligned sections, see DESIGN.md §6e):
//
//   [header]    fixed 80 bytes: magic "PTBLSTR1", format version, grid
//               shape, section offsets/sizes, per-section CRC-32s, and a
//               header CRC over the preceding fields.
//   [metadata]  opaque UTF-8 blob (the store puts the cache key on the
//               first line, build provenance after), padded to 8 bytes.
//   [payload]   tstart grid (rows f64) | ftarget grid (cols f64) |
//               feasibility bitmap (ceil(rows*cols/8) bytes, padded to 8) |
//               dense cells (rows*cols records of (2+num_cores) f64:
//               average_frequency, total_power, per-core frequencies;
//               infeasible cells all-zero).
//
// Doubles are stored as raw IEEE-754 bits, so save→load→serve is bitwise
// identical to the in-memory table. save() writes temp+rename so readers
// never observe a torn file; every open validates magic → version →
// header CRC → bounds → section CRCs, in that order, and reports a
// path-anchored api::Status on the first violation.
//
// TableView is the zero-copy reader: it mmaps the file read-only and
// serves grids/cells straight out of the page cache, so N processes (or N
// restarts) share one build's pages. Lifetime rule: pointers returned by
// the accessors alias the mapping and die with the view; materialize()
// copies into an owning core::FrequencyTable for the serving path, whose
// policies keep the table beyond any view scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/status.hpp"
#include "core/frequency_table.hpp"

namespace protemp::store {

/// Identifies a table artifact; doubles as the endianness sentinel (a
/// big-endian writer would scramble every integer field, but the magic
/// bytes still match — the version check right after catches it).
inline constexpr char kTableMagic[8] = {'P', 'T', 'B', 'L',
                                        'S', 'T', 'R', '1'};
/// Current writer version. v2 extends v1 only in the metadata section: a
/// heterogeneous build records its per-core frequency axes on a
/// `core-fmax-hz = <f0>,<f1>,...` line, restored into
/// FrequencyTable::core_fmax() on load. The byte layout is unchanged, so
/// this build reads v1 artifacts as-is; versions outside
/// [kMinTableFormatVersion, kTableFormatVersion] fail with a named
/// "unsupported format version" error, never a misparse.
inline constexpr std::uint32_t kTableFormatVersion = 2;
inline constexpr std::uint32_t kMinTableFormatVersion = 1;

/// Metadata line prefix carrying the per-core frequency axes of a
/// heterogeneous build (v2; absent on homogeneous artifacts).
inline constexpr std::string_view kCoreFmaxMetaPrefix = "core-fmax-hz = ";

/// Fixed little-endian file header. Field order is the wire format;
/// header_crc covers every byte before it (offset 0..71) and must be last.
struct TableFileHeader {
  char magic[8];
  std::uint32_t version = kTableFormatVersion;
  std::uint32_t num_cores32 = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_bytes = 0;
  std::uint64_t payload_offset = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t meta_crc = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(TableFileHeader) == 80,
              "wire format: header is exactly 80 bytes");

/// Serializes `table` (+ metadata blob) to `path` atomically: the bytes
/// land in `path + ".tmp"` first and are renamed over the target, so a
/// concurrent open sees either the old file or the complete new one.
api::Status save_table(const core::FrequencyTable& table,
                       std::string_view metadata, const std::string& path);

/// Reads and fully validates `path`, materializing an owning table.
/// `metadata` (optional) receives the metadata blob.
api::StatusOr<core::FrequencyTable> load_table(const std::string& path,
                                               std::string* metadata);

/// Read-only mmap over a validated table file. Movable, not copyable;
/// the mapping (and every pointer handed out) lives exactly as long as
/// the view. All accessors are const and safe to share across threads.
class TableView {
 public:
  static api::StatusOr<TableView> open(const std::string& path);

  TableView(TableView&& other) noexcept;
  TableView& operator=(TableView&& other) noexcept;
  TableView(const TableView&) = delete;
  TableView& operator=(const TableView&) = delete;
  ~TableView();

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t num_cores() const noexcept { return num_cores_; }
  /// On-disk format version of the opened artifact (1 or 2).
  std::uint32_t version() const noexcept { return version_; }

  /// Grid pointers alias the mapping (rows() / cols() elements).
  const double* tstart_grid() const noexcept { return tstart_; }
  const double* ftarget_grid() const noexcept { return ftarget_; }

  bool feasible(std::size_t row, std::size_t col) const;
  double average_frequency(std::size_t row, std::size_t col) const;
  double total_power(std::size_t row, std::size_t col) const;
  /// Per-core frequency vector of a cell (num_cores() elements).
  const double* frequencies(std::size_t row, std::size_t col) const;

  std::string_view metadata() const noexcept { return metadata_; }

  std::size_t feasible_cells() const noexcept;

  /// Copies the mapped payload into an owning core::FrequencyTable —
  /// bitwise identical to the table that was saved. The result outlives
  /// the view.
  core::FrequencyTable materialize() const;

 private:
  TableView() = default;

  std::size_t cell_index(std::size_t row, std::size_t col) const;

  void* mapping_ = nullptr;
  std::size_t mapping_bytes_ = 0;
  std::uint32_t version_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_cores_ = 0;
  const double* tstart_ = nullptr;
  const double* ftarget_ = nullptr;
  const unsigned char* bitmap_ = nullptr;
  const double* cells_ = nullptr;
  std::string_view metadata_;
};

}  // namespace protemp::store
